"""Semantic tests for every naive specification against Python oracles."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocal import run
from repro.workloads import (
    aggregation_spec,
    column_store_read_spec,
    duplicate_removal_spec,
    insertion_sort_spec,
    make_columns,
    make_singleton_runs,
    make_sorted_multiset,
    make_sorted_unique,
    make_tuples,
    make_value_multiplicity,
    multiset_diff_multiplicity_spec,
    multiset_diff_sorted_spec,
    multiset_union_multiplicity_spec,
    multiset_union_sorted_spec,
    naive_join_spec,
    naive_product_spec,
    set_union_spec,
)

ints = st.lists(st.integers(0, 30), max_size=10)


class TestJoinSpecs:
    @given(
        r=st.lists(st.tuples(st.integers(0, 4), st.integers()), max_size=8),
        s=st.lists(st.tuples(st.integers(0, 4), st.integers()), max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_naive_join(self, r, s):
        expected = [(x, y) for x in r for y in s if x[0] == y[0]]
        assert run(naive_join_spec(), R=r, S=s) == expected

    @given(
        r=st.lists(st.tuples(st.integers(), st.integers()), max_size=6),
        s=st.lists(st.tuples(st.integers(), st.integers()), max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_product(self, r, s):
        expected = [(x, y) for x in r for y in s]
        assert run(naive_product_spec(), R=r, S=s) == expected


class TestSortSpec:
    @given(data=ints)
    @settings(max_examples=50, deadline=None)
    def test_insertion_sort(self, data):
        runs = [[x] for x in data]
        assert run(insertion_sort_spec(), Rs=runs) == sorted(data)


class TestSetOps:
    @given(a=ints, b=ints)
    @settings(max_examples=50, deadline=None)
    def test_set_union(self, a, b):
        a, b = sorted(set(a)), sorted(set(b))
        assert run(set_union_spec(), A=a, B=b) == sorted(set(a) | set(b))

    @given(a=ints, b=ints)
    @settings(max_examples=50, deadline=None)
    def test_multiset_union(self, a, b):
        a, b = sorted(a), sorted(b)
        assert run(multiset_union_sorted_spec(), A=a, B=b) == sorted(a + b)

    @given(a=ints, b=ints)
    @settings(max_examples=50, deadline=None)
    def test_multiset_diff(self, a, b):
        a, b = sorted(a), sorted(b)
        expected = sorted((Counter(a) - Counter(b)).elements())
        assert run(multiset_diff_sorted_spec(), A=a, B=b) == expected

    @given(
        a=st.dictionaries(st.integers(0, 20), st.integers(1, 5), max_size=6),
        b=st.dictionaries(st.integers(0, 20), st.integers(1, 5), max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_value_multiplicity_union(self, a, b):
        va, vb = sorted(a.items()), sorted(b.items())
        expected = sorted((Counter(a) + Counter(b)).items())
        assert run(multiset_union_multiplicity_spec(), A=va, B=vb) == expected

    @given(
        a=st.dictionaries(st.integers(0, 20), st.integers(1, 5), max_size=6),
        b=st.dictionaries(st.integers(0, 20), st.integers(1, 5), max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_value_multiplicity_diff(self, a, b):
        va, vb = sorted(a.items()), sorted(b.items())
        expected = sorted((Counter(a) - Counter(b)).items())
        assert run(multiset_diff_multiplicity_spec(), A=va, B=vb) == expected


class TestScans:
    @given(
        rows=st.integers(0, 8),
        cols=st.integers(2, 5),
        seed=st.integers(0, 99),
    )
    @settings(max_examples=30, deadline=None)
    def test_column_read(self, rows, cols, seed):
        columns = make_columns(rows, cols, seed=seed)
        expected = list(zip(*(columns[f"C{i + 1}"] for i in range(cols))))
        assert run(column_store_read_spec(cols), **columns) == expected

    def test_column_read_needs_two(self):
        with pytest.raises(ValueError):
            column_store_read_spec(1)

    @given(data=ints)
    @settings(max_examples=50, deadline=None)
    def test_duplicate_removal(self, data):
        data = sorted(x for x in data if x >= 0)  # sentinel is -1
        expected = sorted(set(data))
        assert run(duplicate_removal_spec(), A=data) == expected

    @given(data=ints)
    @settings(max_examples=50, deadline=None)
    def test_aggregation(self, data):
        assert run(aggregation_spec(), A=data) == sum(data)


class TestGenerators:
    def test_tuples_deterministic(self):
        assert make_tuples(5, 3, seed=1) == make_tuples(5, 3, seed=1)

    def test_sorted_unique(self):
        out = make_sorted_unique(10, 100, seed=2)
        assert out == sorted(set(out)) and len(out) == 10

    def test_sorted_unique_domain_check(self):
        with pytest.raises(ValueError):
            make_sorted_unique(10, 5)

    def test_sorted_multiset(self):
        out = make_sorted_multiset(20, 5, seed=3)
        assert out == sorted(out) and len(out) == 20

    def test_value_multiplicity(self):
        out = make_value_multiplicity(6, 50, seed=4)
        values = [value for value, _ in out]
        assert values == sorted(set(values))
        assert all(mult >= 1 for _, mult in out)

    def test_singleton_runs(self):
        out = make_singleton_runs(7, 10, seed=5)
        assert len(out) == 7 and all(len(run_) == 1 for run_ in out)


class TestProfiles:
    def test_profile_and_selectivity(self):
        from repro.workloads import RelationProfile, join_selectivity

        r = RelationProfile(card=1000, elem_bytes=512, key_domain=100)
        s = RelationProfile(card=100, elem_bytes=512, key_domain=100)
        assert r.total_bytes == 512_000
        assert join_selectivity(r, s) == pytest.approx(0.01)
        spec = r.input_spec()
        assert spec.card == 1000 and spec.elem_bytes == 512

    def test_unique_key_selectivity(self):
        from repro.workloads import RelationProfile, join_selectivity

        r = RelationProfile(card=1000, elem_bytes=8)
        s = RelationProfile(card=10, elem_bytes=8)
        assert join_selectivity(r, s) == pytest.approx(1 / 1000)
