"""Parallel frontier costing is observationally serial (DESIGN.md §13).

The determinism contract: with ``Synthesizer.workers > 1`` every
generation's candidate batch is costed on a process pool, but the
winner, its derivation chain, the cost totals, and the search-space
accounting must be *bit-identical* to the serial run — candidate
admission and truncation happen before costing, and worker costing is
the same pure pipeline the parent runs.

Pinned here over the full central registry (every workload at its
default scale) under all three strategies, through the declarative
front door.
"""

import pytest

from repro.api import Session, default_registry
from repro.parallel import PARALLEL_ENV

STRATEGIES = ("exhaustive-bfs", "beam", "best-first")


def _sweep(workers: int) -> dict:
    session = Session(workers=workers)
    results = {}
    for strategy in STRATEGIES:
        for workload in default_registry():
            job = session.synthesize(workload.name, strategy=strategy)
            results[(workload.name, strategy)] = job
    return results


@pytest.fixture(scope="module")
def serial():
    return _sweep(workers=1)


@pytest.fixture(scope="module")
def parallel():
    return _sweep(workers=2)


class TestRegistrySweepParity:
    def test_sweep_covers_all_registry_workloads(self, serial):
        names = {name for name, _ in serial}
        assert names == set(default_registry().names())
        assert len(names) == 17

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_winners_bit_identical(self, serial, parallel, strategy):
        for workload in default_registry():
            ours = parallel[(workload.name, strategy)]
            theirs = serial[(workload.name, strategy)]
            # Hash-consing makes node identity meaningful: the parallel
            # winner is the *same interned program*, not merely equal.
            assert ours.winner is theirs.winner, workload.name

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_derivations_identical(self, serial, parallel, strategy):
        for workload in default_registry():
            ours = parallel[(workload.name, strategy)]
            theirs = serial[(workload.name, strategy)]
            assert ours.derivation == theirs.derivation, workload.name

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_cost_totals_identical(self, serial, parallel, strategy):
        for workload in default_registry():
            ours = parallel[(workload.name, strategy)]
            theirs = serial[(workload.name, strategy)]
            assert ours.spec_cost == theirs.spec_cost, workload.name
            assert ours.opt_cost == theirs.opt_cost, workload.name

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_search_accounting_identical(self, serial, parallel, strategy):
        # Space, truncation, and the number of candidates costed are
        # admission-side quantities; parallel costing may not move them.
        for workload in default_registry():
            ours = parallel[(workload.name, strategy)].search
            theirs = serial[(workload.name, strategy)].search
            assert ours.space == theirs.space, workload.name
            assert ours.costed == theirs.costed, workload.name
            assert ours.expanded == theirs.expanded, workload.name
            assert ours.pruned == theirs.pruned, workload.name

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_tuned_parameters_identical(self, serial, parallel, strategy):
        for workload in default_registry():
            ours = parallel[(workload.name, strategy)]
            theirs = serial[(workload.name, strategy)]
            assert (
                ours.plan.parameter_values == theirs.plan.parameter_values
            ), workload.name


class TestEscapeHatch:
    def test_env_zero_disables_the_pool(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "0")
        session = Session(workers=4)
        job = session.synthesize("grace-join", scale="validation")
        synthesizer = next(iter(session._synthesizers.values()))
        assert synthesizer.workers == 4  # the knob survives ...
        assert synthesizer._coster_for(None, {}) is None  # ... inert
        assert job.winner is not None


class TestSynthesizeAllAuto:
    def test_parallel_zero_resolves_to_auto(self, monkeypatch):
        # ``parallel=0`` must mean "one worker per CPU", not the old
        # silent serial fallback: the session consults resolve_workers
        # with the batch size, whatever this box's CPU count is.
        import repro.api.session as session_module

        seen = {}
        real = session_module.resolve_workers

        def spy(workers, task_count=None):
            seen["args"] = (workers, task_count)
            return real(workers, task_count)

        monkeypatch.setattr(session_module, "resolve_workers", spy)
        session = Session()
        jobs = session.synthesize_all(
            ["bnl-join", "grace-join"], scale="validation", parallel=0
        )
        assert seen["args"] == (0, 2)
        assert [job.workload for job in jobs] == ["bnl-join", "grace-join"]

    def test_batch_pool_goes_through_shared_utility(self, monkeypatch):
        # Exactly one pool-construction path: the batch fan-out is
        # `repro.parallel.run_tasks`, not a session-private executor.
        import repro.api.session as session_module

        seen = {}
        real = session_module.run_tasks

        def spy(fn, tasks, workers):
            seen["workers"] = workers
            return real(fn, tasks, workers)

        monkeypatch.setattr(
            session_module, "resolve_workers", lambda *a, **k: 2
        )
        monkeypatch.setattr(session_module, "run_tasks", spy)
        session = Session()
        jobs = session.synthesize_all(
            ["bnl-join", "grace-join"], scale="validation", parallel=2
        )
        assert seen["workers"] == 2
        assert [job.workload for job in jobs] == ["bnl-join", "grace-join"]
        assert all(job.winner is not None for job in jobs)
