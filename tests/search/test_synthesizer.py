"""End-to-end synthesizer tests: the paper's derivations come out."""

import pytest

from repro.cost import atom, list_annot, tuple_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.ocal import App, For, TreeFold, evaluate, pretty
from repro.search import Synthesizer, bind_parameters
from repro.symbolic import var
from repro.workloads import (
    aggregation_spec,
    insertion_sort_spec,
    naive_join_spec,
)


def join_synthesizer(**kwargs):
    options = dict(max_depth=3, max_programs=120)
    options.update(kwargs)
    return Synthesizer(hierarchy=hdd_ram_hierarchy(8 * MB), **options)


def synthesize_join(synth=None, stats=None):
    synth = synth or join_synthesizer()
    return synth.synthesize(
        spec=naive_join_spec(),
        input_annots={
            "R": list_annot(tuple_annot(atom(1), atom(1)), var("x")),
            "S": list_annot(tuple_annot(atom(1), atom(1)), var("y")),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        stats=stats or {"x": 2.0**26, "y": 2.0**22},
    )


class TestJoinSynthesis:
    @pytest.fixture(scope="class")
    def result(self):
        return synthesize_join()

    def test_spec_vastly_more_expensive(self, result):
        assert result.spec_cost > result.opt_cost * 1e4

    def test_best_is_blocked(self, result):
        from repro.ocal import walk, For

        blocked = [
            n
            for n in walk(result.best.program)
            if isinstance(n, For) and n.block_in != 1
        ]
        assert blocked, "the winner must fetch data in blocks"

    def test_derivation_recorded(self, result):
        assert result.best.derivation
        assert all(isinstance(step, str) for step in result.best.derivation)
        assert result.steps == len(result.best.derivation)

    def test_search_statistics(self, result):
        assert result.search_space > 10
        assert result.candidates_costed > 10
        assert result.runtime > 0
        assert result.depth_reached >= 1

    def test_top_candidates_sorted(self, result):
        costs = [candidate.cost for candidate in result.top]
        assert costs == sorted(costs)
        assert result.top[0].cost == result.opt_cost

    def test_tuned_parameters_feasible(self, result):
        env = result.best.tuned.env(
            {"x": 2.0**26, "y": 2.0**22}
        )
        for constraint in result.best.estimate.constraints:
            assert constraint.satisfied(env)

    def test_executable_program_is_correct(self, result):
        program = result.best.executable()
        R = [(i % 5, i) for i in range(9)]
        S = [(i % 5, -i) for i in range(7)]
        expected = evaluate(naive_join_spec(), {"R": R, "S": S})

        def normalize(rows):
            return sorted(
                tuple(sorted(map(repr, row))) if isinstance(row, tuple)
                else (repr(row),)
                for row in rows
            )

        actual = evaluate(program, {"R": R, "S": S})
        assert normalize(actual) == normalize(expected)


class TestSortSynthesis:
    @pytest.fixture(scope="class")
    def result(self):
        synth = Synthesizer(
            hierarchy=hdd_ram_hierarchy(8 * MB),
            max_depth=5,
            max_programs=200,
            max_treefold_arity=16,
        )
        return synth.synthesize(
            spec=insertion_sort_spec(),
            input_annots={
                "Rs": list_annot(list_annot(atom(1), 1), var("x")),
            },
            input_locations={"Rs": "HDD"},
            stats={"x": 1e8},
            output_location="HDD",
        )

    def test_derives_treefold_merge_sort(self, result):
        assert isinstance(result.best.program, App)
        assert isinstance(result.best.program.fn, TreeFold)
        assert result.best.program.fn.arity >= 4

    def test_derivation_follows_the_paper(self, result):
        chain = result.best.derivation
        assert "fldL-to-trfld" in chain
        assert "inc-branching" in chain
        assert "apply-block" in chain

    def test_quadratic_to_quasilinear_speedup(self, result):
        assert result.spec_cost / result.opt_cost > 1e4

    def test_executable_sorts(self, result):
        program = result.best.executable()
        data = [9, 1, 8, 2, 7, 3, 5, 4, 6, 0]
        out = evaluate(program, {"Rs": [[x] for x in data]})
        assert out == sorted(data)


class TestAggregationSynthesis:
    def test_blocked_scan_derived(self):
        synth = Synthesizer(
            hierarchy=hdd_ram_hierarchy(8 * MB),
            max_depth=3,
            max_programs=40,
        )
        result = synth.synthesize(
            spec=aggregation_spec(),
            input_annots={"A": list_annot(atom(1), var("x"))},
            input_locations={"A": "HDD"},
            stats={"x": 1e9},
        )
        assert result.spec_cost > result.opt_cost * 100
        text = pretty(result.best.program)
        assert "foldL [" in text  # blocked fold
        out = evaluate(result.best.executable(), {"A": [1, 2, 3, 4, 5]})
        assert out == 15


class TestSearchControls:
    def test_max_programs_truncates(self):
        synth = join_synthesizer(max_programs=20, max_depth=4)
        result = synthesize_join(synth)
        assert result.search_space <= 21
        assert result.frontier_truncated

    def test_depth_zero_means_spec_only(self):
        synth = join_synthesizer(max_depth=0)
        result = synthesize_join(synth)
        assert result.search_space == 1
        assert result.best.program == result.spec

    def test_deeper_search_never_worse(self):
        shallow = synthesize_join(join_synthesizer(max_depth=1))
        deep = synthesize_join(join_synthesizer(max_depth=3))
        assert deep.opt_cost <= shallow.opt_cost * 1.0001

    def test_search_space_grows_with_depth(self):
        shallow = synthesize_join(join_synthesizer(max_depth=1))
        deep = synthesize_join(join_synthesizer(max_depth=3))
        assert deep.search_space > shallow.search_space
