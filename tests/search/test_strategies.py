"""Strategy-level tests: agreement, pruning, determinism, resolution."""

import math

import pytest

from repro.cost import atom, list_annot, optimistic_cost, tuple_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.search import (
    BeamSearch,
    BestFirst,
    ExhaustiveBFS,
    FifoFrontier,
    PriorityFrontier,
    SearchItem,
    Synthesizer,
    resolve_strategy,
    synthesize,
)
from repro.symbolic import var
from repro.workloads import naive_join_spec

JOIN_ANNOTS = {
    "R": list_annot(tuple_annot(atom(1), atom(1)), var("x")),
    "S": list_annot(tuple_annot(atom(1), atom(1)), var("y")),
}
JOIN_STATS = {"x": 2.0**26, "y": 2.0**22}


def join_synthesizer(**kwargs):
    options = dict(max_depth=3, max_programs=120)
    options.update(kwargs)
    return Synthesizer(hierarchy=hdd_ram_hierarchy(8 * MB), **options)


def synthesize_join(synth):
    return synth.synthesize(
        spec=naive_join_spec(),
        input_annots=JOIN_ANNOTS,
        input_locations={"R": "HDD", "S": "HDD"},
        stats=JOIN_STATS,
    )


class TestStrategyAgreement:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            name: synthesize_join(join_synthesizer(strategy=strategy))
            for name, strategy in [
                ("exhaustive", None),
                ("beam", BeamSearch(width=4)),
                ("best-first", BestFirst()),
            ]
        }

    def test_all_strategies_find_the_same_best_program(self, results):
        reference = results["exhaustive"].best.program
        assert results["beam"].best.program == reference
        assert results["best-first"].best.program == reference

    def test_strategy_name_recorded(self, results):
        assert results["exhaustive"].strategy == "exhaustive-bfs"
        assert results["beam"].strategy == "beam"
        assert results["best-first"].strategy == "best-first"

    def test_non_exhaustive_strategies_cost_fewer_candidates(self, results):
        exhaustive = results["exhaustive"].candidates_costed
        assert results["beam"].candidates_costed < exhaustive
        assert results["best-first"].candidates_costed < exhaustive

    def test_best_first_prunes_and_still_covers_the_space(self, results):
        bf = results["best-first"]
        assert bf.pruned > 0
        assert bf.search_space == results["exhaustive"].search_space

    def test_beam_narrows_the_explored_space(self, results):
        assert (
            results["beam"].search_space
            < results["exhaustive"].search_space
        )

    def test_expanded_counter_populated(self, results):
        for result in results.values():
            assert result.expanded > 0


class TestLowerBoundAdmissibility:
    def test_bound_never_exceeds_tuned_cost_of_winners(self):
        result = synthesize_join(join_synthesizer())
        for candidate in result.top:
            bound = optimistic_cost(candidate.estimate, JOIN_STATS)
            assert bound <= candidate.cost * (1 + 1e-9)

    def test_bound_without_parameters_is_exact(self):
        result = synthesize_join(join_synthesizer(max_depth=0))
        spec = result.best
        bound = optimistic_cost(spec.estimate, JOIN_STATS)
        if not spec.estimate.parameters:
            assert bound == pytest.approx(spec.cost)
        else:
            assert bound <= spec.cost * (1 + 1e-9)


class TestDeterminism:
    def test_truncated_search_is_reproducible(self):
        first = synthesize_join(join_synthesizer(max_programs=20, max_depth=4))
        second = synthesize_join(join_synthesizer(max_programs=20, max_depth=4))
        assert first.frontier_truncated and second.frontier_truncated
        assert first.search_space == second.search_space
        assert first.candidates_costed == second.candidates_costed
        assert first.best.program == second.best.program
        assert first.depth_reached == second.depth_reached

    def test_truncation_reflects_partial_depth(self):
        result = synthesize_join(join_synthesizer(max_programs=20, max_depth=4))
        assert result.frontier_truncated
        # Programs were admitted and costed at the depth the cap tripped.
        assert result.depth_reached >= 1
        assert result.search_space <= 21

    def test_beam_truncated_search_is_reproducible(self):
        make = lambda: join_synthesizer(
            max_programs=20, max_depth=4, strategy=BeamSearch(width=4)
        )
        first, second = synthesize_join(make()), synthesize_join(make())
        assert first.best.program == second.best.program
        assert first.candidates_costed == second.candidates_costed


class TestResolution:
    def test_none_resolves_to_exhaustive(self):
        assert isinstance(resolve_strategy(None), ExhaustiveBFS)

    def test_names_resolve(self):
        assert isinstance(resolve_strategy("exhaustive-bfs"), ExhaustiveBFS)
        assert isinstance(resolve_strategy("bfs"), ExhaustiveBFS)
        assert isinstance(resolve_strategy("beam"), BeamSearch)
        assert isinstance(resolve_strategy("best-first"), BestFirst)

    def test_instances_pass_through(self):
        beam = BeamSearch(width=2)
        assert resolve_strategy(beam) is beam

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            resolve_strategy("simulated-annealing")

    def test_non_strategy_object_raises(self):
        with pytest.raises(TypeError):
            resolve_strategy(42)

    def test_facade_accepts_strategy_names(self):
        result = synthesize(
            spec=naive_join_spec(),
            hierarchy=hdd_ram_hierarchy(8 * MB),
            input_annots=JOIN_ANNOTS,
            input_locations={"R": "HDD", "S": "HDD"},
            stats=JOIN_STATS,
            max_depth=2,
            max_programs=60,
            strategy="beam",
        )
        assert result.strategy == "beam"

    def test_invalid_configurations_raise(self):
        with pytest.raises(ValueError):
            BeamSearch(width=0)
        with pytest.raises(ValueError):
            BestFirst(margin=0.5)


class TestFrontiers:
    def test_fifo_order(self):
        frontier = FifoFrontier()
        items = [
            SearchItem(naive_join_spec(), (), 0, float(i), i)
            for i in (3, 1, 2)
        ]
        for item in items:
            frontier.push(item)
        assert [frontier.pop().order for _ in range(3)] == [3, 1, 2]
        assert not frontier

    def test_priority_order_with_tie_break(self):
        frontier = PriorityFrontier()
        spec = naive_join_spec()
        frontier.push(SearchItem(spec, (), 0, 2.0, 1))
        frontier.push(SearchItem(spec, (), 0, 1.0, 3))
        frontier.push(SearchItem(spec, (), 0, 1.0, 2))
        popped = [frontier.pop() for _ in range(3)]
        assert [(i.cost, i.order) for i in popped] == [
            (1.0, 2),
            (1.0, 3),
            (2.0, 1),
        ]

    def test_greedy_beam_width_one_terminates(self):
        result = synthesize_join(
            join_synthesizer(strategy=BeamSearch(width=1))
        )
        assert result.opt_cost <= result.spec_cost
        assert math.isfinite(result.opt_cost)
