"""End-to-end pipeline tests: spec → synthesis → plan → simulation → C.

These cover the seams between packages that unit tests cannot: tuned
parameters flowing into executable plans, semantic equivalence of the
winner at every stage, and the C generator accepting real synthesizer
output.
"""

import pytest

from repro.codegen import compile_candidate, generate_c
from repro.cost import atom, list_annot, tuple_annot
from repro.hierarchy import MB, hdd_ram_hierarchy, two_hdd_hierarchy
from repro.ocal import block_params, evaluate
from repro.runtime import ExecutionConfig, InputSpec
from repro.search import Synthesizer
from repro.symbolic import var
from repro.workloads import (
    aggregation_spec,
    insertion_sort_spec,
    make_singleton_runs,
    make_tuples,
    naive_join_spec,
)


@pytest.fixture(scope="module")
def join_result():
    synth = Synthesizer(
        hierarchy=hdd_ram_hierarchy(8 * MB), max_depth=4, max_programs=200
    )
    return synth.synthesize(
        spec=naive_join_spec(),
        input_annots={
            "R": list_annot(tuple_annot(atom(8), atom(504)), var("x")),
            "S": list_annot(tuple_annot(atom(8), atom(504)), var("y")),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        stats={"x": 2.0**21, "y": 2.0**16},
    )


class TestJoinPipeline:
    def test_plan_has_no_unbound_parameters(self, join_result):
        plan = compile_candidate(join_result.best)
        assert block_params(plan.program) == frozenset()

    def test_plan_executes_and_returns_stats(self, join_result):
        plan = compile_candidate(join_result.best)
        config = ExecutionConfig(
            hierarchy=hdd_ram_hierarchy(8 * MB),
            input_locations={"R": "HDD", "S": "HDD"},
            cond_probability=1e-6,
            output_card_override=1000.0,
        )
        result = plan.execute(
            config,
            {"R": InputSpec(2**21, 512), "S": InputSpec(2**16, 512)},
        )
        assert result.elapsed > 0
        assert result.stats.device("HDD").bytes_read > 0

    def test_measured_tracks_estimate(self, join_result):
        plan = compile_candidate(join_result.best)
        config = ExecutionConfig(
            hierarchy=hdd_ram_hierarchy(8 * MB),
            input_locations={"R": "HDD", "S": "HDD"},
            cond_probability=1e-6,
            output_card_override=1000.0,
        )
        result = plan.execute(
            config,
            {"R": InputSpec(2**21, 512), "S": InputSpec(2**16, 512)},
        )
        assert 0.2 <= result.elapsed / join_result.opt_cost <= 5.0

    def test_winner_still_joins_correctly(self, join_result):
        program = join_result.best.executable()
        R = make_tuples(10, 4, seed=1)
        S = make_tuples(8, 4, seed=2)
        expected = {
            tuple(sorted(map(repr, (x, y))))
            for x in R
            for y in S
            if x[0] == y[0]
        }
        actual = {
            tuple(sorted(map(repr, row)))
            for row in evaluate(program, {"R": R, "S": S})
        }
        assert actual == expected

    def test_c_generation_accepts_winner(self, join_result):
        code = generate_c(
            join_result.best.executable(),
            inputs=["R", "S"],
            elem_bytes={"R": 512, "S": 512},
        )
        assert "int main(" in code
        assert "fread" in code


class TestSortPipeline:
    @pytest.fixture(scope="class")
    def sort_result(self):
        synth = Synthesizer(
            hierarchy=hdd_ram_hierarchy(4 * MB),
            max_depth=6,
            max_programs=200,
            max_treefold_arity=16,
        )
        return synth.synthesize(
            spec=insertion_sort_spec(),
            input_annots={
                "Rs": list_annot(list_annot(atom(8), 1), var("x")),
            },
            input_locations={"Rs": "HDD"},
            stats={"x": 2.0**24},
            output_location="HDD",
        )

    def test_sort_plan_round_trip(self, sort_result):
        plan = compile_candidate(sort_result.best)
        data = make_singleton_runs(40, 500, seed=3)
        out = evaluate(plan.program, {"Rs": data})
        assert out == sorted(x for [x] in data)

    def test_sort_simulation_beats_naive_by_orders(self, sort_result):
        plan = compile_candidate(sort_result.best)
        config = ExecutionConfig(
            hierarchy=hdd_ram_hierarchy(4 * MB),
            input_locations={"Rs": "HDD"},
            output_location="HDD",
        )
        result = plan.execute(config, {"Rs": InputSpec(2**24, 8)})
        assert result.elapsed < sort_result.spec_cost / 1e4


class TestHierarchyAdaptation:
    def test_output_device_changes_the_winner_costs(self):
        """The same spec costed against two hierarchies gives different
        tuned programs — OCAS's installation-time adaptation story."""
        spec = aggregation_spec()
        annots = {"A": list_annot(atom(8), var("x"))}
        big = Synthesizer(
            hierarchy=hdd_ram_hierarchy(64 * MB), max_depth=3,
            max_programs=40,
        ).synthesize(spec, annots, {"A": "HDD"}, {"x": 2.0**27})
        small = Synthesizer(
            hierarchy=hdd_ram_hierarchy(64 * 1024), max_depth=3,
            max_programs=40,
        ).synthesize(spec, annots, {"A": "HDD"}, {"x": 2.0**27})
        big_k = max(big.best.tuned.values.values(), default=1)
        small_k = max(small.best.tuned.values.values(), default=1)
        assert big_k > small_k  # more memory → bigger blocks
        # More memory can never make the best program costlier; with a
        # seq-ac annotated scan (one seek per pass) the costs may tie.
        assert big.opt_cost <= small.opt_cost * 1.0001

    def test_two_disk_hierarchy_synthesizes(self):
        synth = Synthesizer(
            hierarchy=two_hdd_hierarchy(8 * MB), max_depth=3,
            max_programs=100,
        )
        result = synth.synthesize(
            spec=naive_join_spec(),
            input_annots={
                "R": list_annot(tuple_annot(atom(8), atom(504)), var("x")),
                "S": list_annot(tuple_annot(atom(8), atom(504)), var("y")),
            },
            input_locations={"R": "HDD", "S": "HDD"},
            stats={"x": 2.0**18, "y": 2.0**14},
            output_location="HDD2",
        )
        assert result.opt_cost < result.spec_cost
