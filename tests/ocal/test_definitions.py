"""Expansion equivalence: Figure-2 definitions vs. plugin semantics.

The paper's claim that definitions "do not increase the expressiveness of
the language" is checked by interpreting both the definition node (with
its efficient plugin semantics) and its base-language expansion.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocal import App, For, FuncPow, TreeFold, UnfoldR, evaluate
from repro.ocal.builders import (
    add,
    app,
    avg,
    empty,
    fold_l,
    for_,
    func_pow,
    head,
    lam,
    length,
    mrg,
    mul,
    sing,
    tail,
    tup,
    unfold_r,
    v,
)
from repro.ocal.definitions import (
    AVG_EXPANSION,
    HEAD_EXPANSION,
    LENGTH_EXPANSION,
    MRG_EXPANSION,
    TAIL_EXPANSION,
    expand_builtin,
    expand_for,
    expand_funcpow,
    expand_treefold,
    expand_unfold,
    zip_step_expansion,
)

short_int_lists = st.lists(st.integers(0, 50), min_size=0, max_size=8)
nonempty_int_lists = st.lists(st.integers(0, 50), min_size=1, max_size=8)


class TestBuiltinExpansions:
    @given(data=nonempty_int_lists)
    @settings(max_examples=60, deadline=None)
    def test_head(self, data):
        assert evaluate(App(HEAD_EXPANSION, v("l")), {"l": data}) == data[0]

    @given(data=nonempty_int_lists)
    @settings(max_examples=60, deadline=None)
    def test_tail(self, data):
        assert evaluate(App(TAIL_EXPANSION, v("l")), {"l": data}) == data[1:]

    @given(data=short_int_lists)
    @settings(max_examples=60, deadline=None)
    def test_length(self, data):
        assert (
            evaluate(App(LENGTH_EXPANSION, v("l")), {"l": data}) == len(data)
        )

    @given(data=nonempty_int_lists)
    @settings(max_examples=60, deadline=None)
    def test_avg(self, data):
        expansion = evaluate(App(AVG_EXPANSION, v("l")), {"l": data})
        plugin = evaluate(app(avg(), v("l")), {"l": data})
        assert expansion == plugin

    def test_expand_builtin_lookup(self):
        assert expand_builtin("head") is HEAD_EXPANSION
        with pytest.raises(ValueError):
            expand_builtin("zip")

    @given(l1=short_int_lists, l2=short_int_lists)
    @settings(max_examples=60, deadline=None)
    def test_mrg_step(self, l1, l2):
        l1, l2 = sorted(l1), sorted(l2)
        env = {"p": (l1, l2)}
        expansion = evaluate(App(MRG_EXPANSION, v("p")), env)
        plugin = evaluate(app(mrg(), v("p")), env)
        assert expansion == plugin


class TestForExpansion:
    @given(data=short_int_lists, block=st.integers(1, 5))
    @settings(max_examples=80, deadline=None)
    def test_blocked_for(self, data, block):
        if block == 1:
            loop = for_("x", v("L"), sing(mul(v("x"), v("x"))))
        else:
            loop = for_("b", v("L"), v("b"), block_in=block)
        expanded = expand_for(loop)
        env = {"L": data}
        assert evaluate(expanded, env) == evaluate(loop, env)

    @given(data=short_int_lists, block=st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_blocked_for_with_computation(self, data, block):
        loop = for_("b", v("L"), sing(app(length(), v("b"))), block_in=block)
        env = {"L": data}
        assert evaluate(expand_for(loop), env) == evaluate(loop, env)

    def test_expansion_rejects_unbound_parameter(self):
        loop = for_("b", v("L"), v("b"), block_in="k1")
        with pytest.raises(ValueError):
            expand_for(loop)


class TestFuncPowExpansion:
    @given(
        values=st.lists(st.integers(0, 9), min_size=4, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_quaternary_sum(self, values):
        plus = lam(("a", "b"), add(v("a"), v("b")))
        node = func_pow(2, plus)
        env = {"t": tuple(values)}
        assert evaluate(App(expand_funcpow(node), v("t")), env) == sum(values)

    def test_power_one_is_identity(self):
        plus = lam(("a", "b"), add(v("a"), v("b")))
        assert expand_funcpow(func_pow(1, plus)) is plus

    @given(
        values=st.lists(st.integers(0, 9), min_size=8, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_expansion_matches_plugin(self, values):
        plus = lam(("a", "b"), add(v("a"), v("b")))
        node = func_pow(3, plus)
        env = {"t": tuple(values)}
        assert evaluate(App(node, v("t")), env) == evaluate(
            App(expand_funcpow(node), v("t")), env
        )


class TestUnfoldExpansion:
    @given(l1=short_int_lists, l2=short_int_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_two_lists(self, l1, l2):
        l1, l2 = sorted(l1), sorted(l2)
        node = unfold_r(mrg())
        expanded = expand_unfold(node, arity=2)
        env = {"p": (l1, l2)}
        assert evaluate(App(expanded, v("p")), env) == evaluate(
            App(node, v("p")), env
        )

    @given(
        l1=st.lists(st.integers(0, 20), min_size=2, max_size=5),
        l2=st.lists(st.integers(0, 20), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_zip_expansion(self, l1, l2):
        # unfoldR(z) zips; the expansion consumes one element of each list
        # per step, so equal-length inputs match the builtin exactly.
        n = min(len(l1), len(l2))
        l1, l2 = l1[:n], l2[:n]
        from repro.ocal.builders import zip_

        node = unfold_r(zip_step_expansion(2))
        env = {"p": (l1, l2)}
        expanded = expand_unfold(node, arity=2)
        zipped = evaluate(app(zip_(), v("p")), env)
        assert evaluate(App(expanded, v("p")), env) == zipped
        assert evaluate(App(node, v("p")), env) == zipped


class TestTreeFoldExpansion:
    @given(
        data=st.lists(st.integers(0, 99), min_size=0, max_size=12),
        arity=st.integers(2, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_sort_equivalence(self, data, arity):
        # f = two-list merge lifted to `arity` lists via repeated merging is
        # awkward to express; use arity-2/3/4 with a merge over a tuple
        # realized by unfoldR(mrg) chains only for arity 2.  For arities > 2
        # use list concatenation + sort oracle via associative "merge" on
        # sorted lists expressed with unfoldR(funcPow) plugins.
        seed = [[x] for x in data]
        if arity == 2:
            fn = unfold_r(mrg())
        elif arity == 4:
            fn = unfold_r(func_pow(2, mrg()))
        else:
            return  # only powers of two have funcPow merges
        node = TreeFold(arity, empty().__class__(), fn)
        plugin = evaluate(App(node, v("s")), {"s": seed})
        expanded = expand_treefold(node)
        expansion = evaluate(App(expanded, v("s")), {"s": seed})
        assert plugin == sorted(data)
        assert expansion == sorted(data)

    def test_single_element_seed(self):
        node = TreeFold(2, empty().__class__(), unfold_r(mrg()))
        expanded = expand_treefold(node)
        assert evaluate(App(expanded, v("s")), {"s": [[7]]}) == [7]
