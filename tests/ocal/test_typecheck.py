"""Tests for OCAL type inference (Figure 1)."""

import pytest

from repro.ocal import OcalTypeError, infer
from repro.ocal.builders import (
    add,
    and_,
    app,
    avg,
    concat,
    empty,
    eq,
    flat_map,
    fold_l,
    for_,
    func_pow,
    hash_partition,
    head,
    if_,
    lam,
    length,
    lit,
    mrg,
    proj,
    sing,
    tail,
    tree_fold,
    tup,
    unfold_r,
    v,
    zip_,
)
from repro.ocal.types import (
    ANY,
    BOOL,
    INT,
    STR,
    ListType,
    TupleType,
    list_of,
    tuple_of,
    types_compatible,
)


class TestAtoms:
    def test_literals(self):
        assert infer(lit(1)) == INT
        assert infer(lit(True)) == BOOL
        assert infer(lit("s")) == STR

    def test_variable_from_env(self):
        assert infer(v("x"), {"x": INT}) == INT

    def test_unbound_variable(self):
        with pytest.raises(OcalTypeError):
            infer(v("x"))


class TestStructures:
    def test_tuple(self):
        assert infer(tup(lit(1), lit("a"))) == tuple_of(INT, STR)

    def test_projection(self):
        assert infer(proj(tup(lit(1), lit("a")), 2)) == STR

    def test_projection_out_of_range(self):
        with pytest.raises(OcalTypeError):
            infer(proj(tup(lit(1)), 3))

    def test_projection_from_non_tuple(self):
        with pytest.raises(OcalTypeError):
            infer(proj(lit(1), 1))

    def test_singleton(self):
        assert infer(sing(lit(1))) == list_of(INT)

    def test_empty_is_polymorphic(self):
        assert infer(empty()) == list_of(ANY)

    def test_concat_unifies(self):
        assert infer(concat(empty(), sing(lit(1)))) == list_of(INT)

    def test_concat_rejects_mismatch(self):
        with pytest.raises(OcalTypeError):
            infer(concat(sing(lit(1)), sing(lit("a"))))

    def test_concat_rejects_non_list(self):
        with pytest.raises(OcalTypeError):
            infer(concat(lit(1), empty()))


class TestControl:
    def test_if_unifies_branches(self):
        assert infer(if_(lit(True), empty(), sing(lit(1)))) == list_of(INT)

    def test_if_rejects_non_bool(self):
        with pytest.raises(OcalTypeError):
            infer(if_(lit(1), lit(1), lit(2)))

    def test_if_rejects_mismatched_branches(self):
        with pytest.raises(OcalTypeError):
            infer(if_(lit(True), lit(1), lit("a")))


class TestPrims:
    def test_arithmetic(self):
        assert infer(add(lit(1), lit(2))) == INT

    def test_comparison_gives_bool(self):
        assert infer(eq(lit(1), lit(2))) == BOOL

    def test_comparison_rejects_mismatch(self):
        with pytest.raises(OcalTypeError):
            infer(eq(lit(1), lit("a")))

    def test_boolean_connectives(self):
        assert infer(and_(lit(True), lit(False))) == BOOL

    def test_boolean_rejects_ints(self):
        with pytest.raises(OcalTypeError):
            infer(and_(lit(1), lit(2)))

    def test_arithmetic_rejects_lists(self):
        with pytest.raises(OcalTypeError):
            infer(add(sing(lit(1)), lit(2)))


class TestFunctions:
    def test_application_of_lambda(self):
        f = lam("x", add(v("x"), lit(1)))
        assert infer(app(f, lit(1))) == INT

    def test_pattern_application(self):
        f = lam(("a", "b"), tup(v("b"), v("a")))
        assert infer(app(f, tup(lit(1), lit("s")))) == tuple_of(STR, INT)

    def test_pattern_arity_mismatch(self):
        f = lam(("a", "b"), v("a"))
        with pytest.raises(OcalTypeError):
            infer(app(f, tup(lit(1), lit(2), lit(3))))

    def test_fold_l(self):
        total = fold_l(lit(0), lam(("a", "x"), add(v("a"), v("x"))))
        assert infer(app(total, v("L")), {"L": list_of(INT)}) == INT

    def test_fold_l_accumulator_mismatch(self):
        bad = fold_l(lit(0), lam(("a", "x"), lit("str")))
        with pytest.raises(OcalTypeError):
            infer(app(bad, v("L")), {"L": list_of(INT)})

    def test_flat_map(self):
        f = flat_map(lam("x", sing(tup(v("x"), v("x")))))
        result = infer(app(f, v("L")), {"L": list_of(INT)})
        assert result == list_of(tuple_of(INT, INT))

    def test_flat_map_body_must_be_list(self):
        f = flat_map(lam("x", v("x")))
        with pytest.raises(OcalTypeError):
            infer(app(f, v("L")), {"L": list_of(INT)})

    def test_for_loop(self):
        loop = for_("x", v("L"), sing(v("x")))
        assert infer(loop, {"L": list_of(INT)}) == list_of(INT)

    def test_blocked_for_binds_block(self):
        loop = for_("b", v("L"), sing(app(length(), v("b"))), block_in=4)
        assert infer(loop, {"L": list_of(INT)}) == list_of(INT)

    def test_for_body_must_be_list(self):
        loop = for_("x", v("L"), v("x"))
        with pytest.raises(OcalTypeError):
            infer(loop, {"L": list_of(INT)})


class TestBuiltins:
    def test_head(self):
        assert infer(app(head(), v("L")), {"L": list_of(STR)}) == STR

    def test_tail(self):
        assert infer(app(tail(), v("L")), {"L": list_of(STR)}) == list_of(STR)

    def test_length(self):
        assert infer(app(length(), v("L")), {"L": list_of(STR)}) == INT

    def test_avg(self):
        assert infer(app(avg(), v("L")), {"L": list_of(INT)}) == INT

    def test_zip(self):
        env = {"A": list_of(INT), "B": list_of(STR)}
        out = infer(app(zip_(), tup(v("A"), v("B"))), env)
        assert out == list_of(tuple_of(INT, STR))

    def test_mrg(self):
        env = {"A": list_of(INT), "B": list_of(INT)}
        out = infer(app(mrg(), tup(v("A"), v("B"))), env)
        assert out == TupleType(
            (list_of(INT), tuple_of(list_of(INT), list_of(INT)))
        )

    def test_hash_partition(self):
        out = infer(app(hash_partition(8), v("L")), {"L": list_of(INT)})
        assert out == list_of(list_of(INT))


class TestSortPrograms:
    def test_unfold_mrg(self):
        env = {"A": list_of(INT), "B": list_of(INT)}
        out = infer(app(unfold_r(mrg()), tup(v("A"), v("B"))), env)
        assert out == list_of(INT)

    def test_insertion_sort_type(self):
        sort = app(fold_l(empty(), unfold_r(mrg())), v("Rs"))
        out = infer(sort, {"Rs": list_of(list_of(INT))})
        assert types_compatible(out, list_of(INT))

    def test_treefold_merge_sort_type(self):
        sort = app(tree_fold(2, empty(), unfold_r(mrg())), v("Rs"))
        out = infer(sort, {"Rs": list_of(list_of(INT))})
        assert types_compatible(out, list_of(INT))

    def test_funcpow_merge_type(self):
        env = {f"L{i}": list_of(INT) for i in range(4)}
        seed = tup(v("L0"), v("L1"), v("L2"), v("L3"))
        out = infer(app(unfold_r(func_pow(2, mrg())), seed), env)
        assert out == list_of(INT)

    def test_funcpow_arity_mismatch(self):
        env = {"A": list_of(INT), "B": list_of(INT)}
        with pytest.raises(OcalTypeError):
            infer(app(unfold_r(func_pow(2, mrg())), tup(v("A"), v("B"))), env)


class TestJoinProgram:
    def test_naive_join_type_matches_paper(self):
        join = for_(
            "x",
            v("R"),
            for_(
                "y",
                v("S"),
                if_(
                    eq(proj(v("x"), 1), proj(v("y"), 1)),
                    sing(tup(v("x"), v("y"))),
                    empty(),
                ),
            ),
        )
        env = {
            "R": list_of(tuple_of(INT, INT)),
            "S": list_of(tuple_of(INT, INT)),
        }
        out = infer(join, env)
        assert out == list_of(
            tuple_of(tuple_of(INT, INT), tuple_of(INT, INT))
        )
