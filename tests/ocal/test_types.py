"""Tests for the OCAL type system (Figure 1)."""

import pytest

from repro.ocal.types import (
    ANY,
    BOOL,
    INT,
    STR,
    DType,
    FunType,
    ListType,
    TupleType,
    fun,
    list_of,
    sizeof_atom,
    tuple_of,
    type_of_value,
    types_compatible,
    unify,
)


class TestConstruction:
    def test_tuple_of(self):
        t = tuple_of(INT, STR)
        assert t == TupleType((INT, STR))

    def test_list_of(self):
        assert list_of(INT) == ListType(INT)

    def test_fun(self):
        assert fun(INT, BOOL) == FunType(INT, BOOL)

    def test_join_operator_type_from_paper(self):
        # ⟨[⟨D,D⟩], [⟨D,D⟩]⟩ → [⟨D,D,D,D⟩]
        d = INT
        t = fun(
            tuple_of(list_of(tuple_of(d, d)), list_of(tuple_of(d, d))),
            list_of(tuple_of(d, d, d, d)),
        )
        assert "→" in str(t)

    def test_rendering(self):
        assert str(list_of(tuple_of(INT, STR))) == "[⟨Int, Str⟩]"


class TestUnify:
    def test_identical_atoms(self):
        assert unify(INT, INT) == INT

    def test_mismatched_atoms(self):
        assert unify(INT, STR) is None

    def test_any_is_wildcard(self):
        assert unify(ANY, list_of(INT)) == list_of(INT)
        assert unify(list_of(INT), ANY) == list_of(INT)

    def test_nested_any(self):
        assert unify(list_of(ANY), list_of(INT)) == list_of(INT)

    def test_tuple_arity_mismatch(self):
        assert unify(tuple_of(INT), tuple_of(INT, INT)) is None

    def test_list_vs_tuple(self):
        assert unify(list_of(INT), tuple_of(INT)) is None

    def test_fun_types(self):
        assert unify(fun(ANY, INT), fun(STR, ANY)) == fun(STR, INT)

    def test_compatibility_predicate(self):
        assert types_compatible(list_of(ANY), list_of(tuple_of(INT, INT)))
        assert not types_compatible(INT, BOOL)


class TestTypeOfValue:
    def test_atoms(self):
        assert type_of_value(3) == INT
        assert type_of_value(True) == BOOL  # bool checked before int
        assert type_of_value("s") == STR

    def test_tuple(self):
        assert type_of_value((1, "a")) == tuple_of(INT, STR)

    def test_list(self):
        assert type_of_value([1, 2]) == list_of(INT)

    def test_empty_list_is_polymorphic(self):
        assert type_of_value([]) == list_of(ANY)

    def test_list_of_empty_lists_unifies(self):
        assert type_of_value([[], [1]]) == list_of(list_of(INT))

    def test_heterogeneous_list_rejected(self):
        with pytest.raises(TypeError):
            type_of_value([1, "a"])

    def test_non_ocal_value_rejected(self):
        with pytest.raises(TypeError):
            type_of_value({"not": "ocal"})


class TestSizes:
    def test_int_size_matches_figure4_assumption(self):
        assert sizeof_atom(INT) == 1

    def test_unknown_atom_defaults_to_one(self):
        assert sizeof_atom(DType("Date")) == 1
