"""Exhaustive error-path coverage for the typechecker.

Every ``_expect_*`` rejection branch and every ``_apply_builtin_type``
rejection fires here, together with the position-path contract: an
:class:`OcalTypeError` carries ``path`` (the rewrite-engine step
format) and ``bare_message`` (the message without the rendered
location), and ``str(error)`` renders both.
"""

import pytest

from repro.ocal import OcalTypeError, infer
from repro.ocal.ast import format_path
from repro.ocal.builders import (
    add,
    and_,
    app,
    avg,
    concat,
    empty,
    flat_map,
    fold_l,
    for_,
    func_pow,
    hash_partition,
    head,
    if_,
    lam,
    length,
    lit,
    mrg,
    not_,
    or_,
    prim,
    proj,
    sing,
    tail,
    tree_fold,
    tup,
    unfold_r,
    v,
    zip_,
)
from repro.ocal.types import INT, ListType, TupleType

INTS = ListType(INT)
PAIRS = ListType(TupleType((INT, INT)))


def _fails(expr, env=None, match=None):
    with pytest.raises(OcalTypeError, match=match) as info:
        infer(expr, env or {})
    return info.value


# ----------------------------------------------------------------------
# _expect_list branches, one per call site
# ----------------------------------------------------------------------
def test_concat_left_not_list():
    error = _fails(concat(lit(1), empty()), match="⊔ left operand")
    assert error.path == (("left", None),)


def test_concat_right_not_list():
    error = _fails(concat(empty(), lit(1)), match="⊔ right operand")
    assert error.path == (("right", None),)


def test_for_source_not_list():
    error = _fails(for_("x", lit(1), sing(v("x"))), match="for source")
    assert error.path == (("source", None),)


def test_for_body_not_list():
    error = _fails(
        for_("x", v("R"), lit(1)), env={"R": INTS}, match="for body"
    )
    assert error.path == (("body", None),)


def test_flatmap_argument_not_list():
    _fails(app(flat_map(lam("x", sing(v("x")))), lit(1)),
           match="flatMap argument")


def test_flatmap_body_not_list():
    _fails(app(flat_map(lam("x", v("x"))), v("R")), env={"R": INTS},
           match="flatMap body result")


def test_foldl_argument_not_list():
    _fails(app(fold_l(lit(0), lam(("a", "x"), add(v("a"), v("x")))), lit(1)),
           match="foldL argument")


def test_treefold_argument_not_list():
    _fails(app(tree_fold(2, lit(0), lam(("a", "b"), add(v("a"), v("b")))),
               lit(1)),
           match="treeFold argument")


def test_partition_argument_not_list():
    _fails(app(hash_partition(4), lit(1)), match="partition argument")


def test_unfold_input_not_list():
    _fails(app(unfold_r(mrg()), tup(lit(1), empty())),
           match="unfoldR input")


def test_unfold_chunk_not_list():
    # Generic step returning ⟨non-list, state⟩.
    step = lam("s", tup(lit(1), v("s")))
    _fails(app(unfold_r(step), tup(v("R"))), env={"R": INTS},
           match="unfoldR chunk")


# ----------------------------------------------------------------------
# _expect_all (boolean connectives)
# ----------------------------------------------------------------------
def test_and_rejects_non_bool():
    _fails(and_(lit(True), lit(1)), match="and expects Bool")


def test_or_rejects_non_bool():
    _fails(or_(lit(2), lit(False)), match="or expects Bool")


def test_not_rejects_non_bool():
    _fails(not_(lit(3)), match="not expects Bool")


# ----------------------------------------------------------------------
# _apply_builtin_type rejections
# ----------------------------------------------------------------------
def test_head_argument_not_list():
    _fails(app(head(), lit(1)), match="head argument")


def test_tail_argument_not_list():
    _fails(app(tail(), lit(1)), match="tail argument")


def test_length_argument_not_list():
    _fails(app(length(), lit(1)), match="length argument")


def test_avg_argument_not_list():
    _fails(app(avg(), lit(1)), match="avg argument")


def test_mrg_not_a_pair():
    _fails(app(mrg(), lit(1)), match="mrg expects a pair of lists")


def test_mrg_input_not_list():
    _fails(app(mrg(), tup(empty(), lit(1))), match="mrg input")


def test_mrg_incompatible_lists():
    _fails(app(mrg(), tup(v("R"), v("S"))),
           env={"R": INTS, "S": PAIRS},
           match="mrg on incompatible lists")


def test_zip_not_a_tuple():
    _fails(app(zip_(), lit(1)), match="zip expects a tuple of lists")


def test_zip_input_not_list():
    _fails(app(zip_(), tup(empty(), lit(1))), match="zip input")


def test_unknown_builtin():
    # The Builtin constructor rejects unknown names, so the checker's
    # branch is defensive; exercise the helper directly.
    from repro.ocal.typecheck import _apply_builtin_type

    with pytest.raises(OcalTypeError, match="unknown builtin 'frobnicate'"):
        _apply_builtin_type("frobnicate", INTS, ())


# ----------------------------------------------------------------------
# Error-object contract: path + bare_message + rendering
# ----------------------------------------------------------------------
def test_error_carries_path_and_bare_message():
    program = sing(concat(lit(1), empty()))
    error = _fails(program)
    assert error.path == (("item", None), ("left", None))
    assert error.bare_message == "⊔ left operand must be a list, got Int"
    assert str(error) == (
        f"{error.bare_message} (at {format_path(error.path)})"
    )
    assert format_path(error.path) == "item.left"


def test_unbound_variable_path_inside_tuple():
    error = _fails(tup(lit(1), v("nope")))
    assert error.path == (("items", 1),)
    assert "unbound variable 'nope'" in str(error)


def test_if_condition_path():
    error = _fails(if_(lit(1), empty(), empty()), match="if condition")
    assert error.path == (("cond", None),)


def test_duplicate_pattern_binding_rejected():
    error = _fails(app(lam(("x", "x"), v("x")), tup(lit(1), lit(2))))
    assert "binds 'x' more than once" in error.bare_message


def test_pattern_arity_mismatch():
    _fails(app(lam(("a", "b"), v("a")), tup(lit(1), lit(2), lit(3))),
           match="pattern of arity 2 cannot bind")


def test_projection_from_non_tuple():
    _fails(proj(lit(1), 1), match="projection from non-tuple")


def test_projection_out_of_range():
    _fails(proj(tup(lit(1)), 2), match="out of range")


def test_comparison_incompatible():
    _fails(prim("<=", lit(1), empty()), match="incompatible types")


def test_arith_non_atomic():
    _fails(add(empty(), lit(1)), match="expects atomic operands")


def test_unknown_primitive():
    # Prim's constructor validates the op name, so reach the checker's
    # defensive branch by bypassing ``__post_init__``.
    from repro.ocal.ast import Prim
    from repro.ocal.typecheck import _infer_prim

    rogue = object.__new__(Prim)
    object.__setattr__(rogue, "op", "bitxor")
    object.__setattr__(rogue, "args", (lit(1), lit(2)))
    with pytest.raises(OcalTypeError, match="unknown primitive 'bitxor'"):
        _infer_prim(rogue, {})


def test_funcpow_arity_mismatch():
    merge = func_pow(2, mrg())
    _fails(app(unfold_r(merge), tup(v("R"), v("S"))),
           env={"R": INTS, "S": INTS},
           match="4-way merge applied to arity 2")


def test_unfold_mrg_incompatible_elements():
    _fails(app(unfold_r(mrg()), tup(v("R"), v("S"))),
           env={"R": INTS, "S": PAIRS},
           match="unfoldR\\(mrg\\) on incompatible element types")


def test_unfold_step_must_return_pair():
    step = lam("s", lit(1))
    _fails(app(unfold_r(step), tup(v("R"))), env={"R": INTS},
           match="unfoldR step must return")


def test_applying_non_function():
    _fails(app(lit(1), lit(2)), match="applying non-function")
