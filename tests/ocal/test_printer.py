"""Tests for the OCAL pretty printer."""

from repro.ocal import pretty, pretty_block
from repro.ocal.builders import (
    add,
    app,
    empty,
    eq,
    fold_l,
    for_,
    func_pow,
    hash_partition,
    if_,
    lam,
    lit,
    mrg,
    not_,
    proj,
    sing,
    tree_fold,
    tup,
    unfold_r,
    v,
)


class TestPretty:
    def test_naive_join_reads_like_the_paper(self):
        join = for_(
            "x",
            v("R"),
            for_(
                "y",
                v("S"),
                if_(
                    eq(proj(v("x"), 1), proj(v("y"), 1)),
                    sing(tup(v("x"), v("y"))),
                    empty(),
                ),
            ),
        )
        text = pretty(join)
        assert text == (
            "for (x ← R) for (y ← S) "
            "if x.1 == y.1 then [⟨x, y⟩] else []"
        )

    def test_blocked_for_shows_block_sizes(self):
        loop = for_("xB", v("R"), v("xB"), block_in="k1", block_out="k2")
        assert "[k1]" in pretty(loop)
        assert "[k2]" in pretty(loop)

    def test_seq_annotation_rendered(self):
        loop = for_("x", v("R"), sing(v("x")), seq=("HDD", "RAM"))
        assert "HDD ⇝ RAM" in pretty(loop)

    def test_fold_and_sort(self):
        sort = app(fold_l(empty(), unfold_r(mrg())), v("R"))
        assert pretty(sort) == "(foldL([], unfoldR(mrg)))(R)"

    def test_treefold_merge_sort(self):
        sort = tree_fold(4, empty(), unfold_r(func_pow(2, mrg())))
        assert pretty(sort) == "treeFold[4]([], unfoldR(funcPow[2](mrg)))"

    def test_lambda_pattern(self):
        f = lam(("a", "x"), add(v("a"), v("x")))
        assert pretty(f) == "λ⟨a, x⟩.a + x"

    def test_not_uses_negation_sign(self):
        assert pretty(not_(v("p"))) == "¬p"

    def test_literals(self):
        assert pretty(lit(True)) == "true"
        assert pretty(lit("s")) == '"s"'
        assert pretty(lit(3)) == "3"

    def test_partition(self):
        assert pretty(hash_partition(16, 1)) == "partition[16, key=.1]"

    def test_pretty_block_indents_loops(self):
        loop = for_("x", v("R"), for_("y", v("S"), sing(v("x"))))
        text = pretty_block(loop)
        lines = text.splitlines()
        assert lines[0].startswith("for (x")
        assert lines[1].startswith("  for (y")
