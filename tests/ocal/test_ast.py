"""Tests for AST utilities: traversal, free variables, substitution."""

import pytest

from repro.ocal import (
    App,
    Empty,
    For,
    Lam,
    Lit,
    Prim,
    Proj,
    Sing,
    Tup,
    UnfoldR,
    Var,
    block_params,
    children,
    free_vars,
    fresh_name,
    map_children,
    node_count,
    pattern_names,
    substitute,
    walk,
)
from repro.ocal.builders import (
    empty,
    eq,
    for_,
    hash_partition,
    if_,
    lam,
    proj,
    sing,
    tup,
    unfold_r,
    v,
)


def naive_join():
    return for_(
        "x",
        v("R"),
        for_(
            "y",
            v("S"),
            if_(
                eq(proj(v("x"), 1), proj(v("y"), 1)),
                sing(tup(v("x"), v("y"))),
                empty(),
            ),
        ),
    )


class TestStructure:
    def test_nodes_are_hashable_and_comparable(self):
        assert naive_join() == naive_join()
        assert hash(naive_join()) == hash(naive_join())

    def test_literals_validate(self):
        with pytest.raises(TypeError):
            Lit([1, 2])

    def test_projection_is_one_based(self):
        with pytest.raises(ValueError):
            Proj(v("x"), 0)

    def test_prim_rejects_unknown_ops(self):
        with pytest.raises(ValueError):
            Prim("xor", (v("a"), v("b")))

    def test_children_in_field_order(self):
        node = if_(v("c"), v("a"), v("b"))
        assert children(node) == (v("c"), v("a"), v("b"))

    def test_children_of_tuple_fields(self):
        node = tup(v("a"), v("b"))
        assert children(node) == (v("a"), v("b"))

    def test_walk_counts_all_nodes(self):
        assert node_count(naive_join()) == len(list(walk(naive_join())))

    def test_map_children_identity_preserves_object(self):
        node = naive_join()
        assert map_children(node, lambda c: c) is node

    def test_map_children_rebuilds(self):
        node = tup(v("a"), v("b"))
        renamed = map_children(node, lambda c: v("z"))
        assert renamed == tup(v("z"), v("z"))


class TestPatterns:
    def test_flat_pattern(self):
        assert pattern_names("x") == ("x",)

    def test_tuple_pattern(self):
        assert pattern_names(("a", "b")) == ("a", "b")

    def test_nested_pattern(self):
        assert pattern_names((("a", "b"), "c")) == ("a", "b", "c")


class TestFreeVars:
    def test_naive_join_inputs(self):
        assert free_vars(naive_join()) == {"R", "S"}

    def test_lambda_binds(self):
        node = lam(("a", "x"), tup(v("a"), v("x"), v("free")))
        assert free_vars(node) == {"free"}

    def test_for_binds_loop_var(self):
        node = for_("x", v("R"), sing(v("x")))
        assert free_vars(node) == {"R"}

    def test_for_source_not_shadowed(self):
        node = for_("x", v("x"), sing(v("x")))
        assert free_vars(node) == {"x"}  # the source's x is free


class TestSubstitution:
    def test_simple(self):
        node = tup(v("x"), v("y"))
        assert substitute(node, "x", v("z")) == tup(v("z"), v("y"))

    def test_lambda_shadowing(self):
        node = lam("x", v("x"))
        assert substitute(node, "x", v("z")) == node

    def test_for_shadowing(self):
        node = for_("x", v("R"), sing(v("x")))
        assert substitute(node, "x", v("z")) == node

    def test_for_source_substituted_even_when_shadowed(self):
        node = for_("x", v("x"), sing(v("x")))
        result = substitute(node, "x", v("R"))
        assert result == for_("x", v("R"), sing(v("x")))

    def test_capture_avoidance_in_lambda(self):
        # (λy. x + y)[x := y] must not capture the free y.
        node = lam("y", Prim("+", (v("x"), v("y"))))
        result = substitute(node, "x", v("y"))
        assert isinstance(result, Lam)
        assert result.pattern != "y"
        assert free_vars(result) == {"y"}

    def test_capture_avoidance_in_for(self):
        node = for_("y", v("R"), sing(tup(v("x"), v("y"))))
        result = substitute(node, "x", v("y"))
        assert isinstance(result, For)
        assert result.var != "y"
        assert free_vars(result) == {"R", "y"}

    def test_fresh_name_avoids(self):
        name = fresh_name("x", {"x", "x_0"})
        assert name not in {"x", "x_0"}


class TestBlockParams:
    def test_collects_named_parameters(self):
        node = for_("xB", v("R"), sing(v("xB")), block_in="k1", block_out="k2")
        assert block_params(node) == {"k1", "k2"}

    def test_unfold_and_partition_parameters(self):
        node = App(
            unfold_r(v("f"), block_in="kb"),
            tup(App(hash_partition("s", 1), v("R")), empty()),
        )
        assert block_params(node) == {"kb", "s"}

    def test_concrete_blocks_are_not_parameters(self):
        node = for_("xB", v("R"), sing(v("xB")), block_in=64)
        assert block_params(node) == frozenset()
