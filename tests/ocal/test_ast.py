"""Tests for AST utilities: traversal, free variables, substitution."""

import pytest

from repro.ocal import (
    App,
    Empty,
    For,
    Lam,
    Lit,
    Prim,
    Proj,
    Sing,
    Tup,
    UnfoldR,
    Var,
    block_params,
    children,
    free_vars,
    fresh_name,
    map_children,
    node_count,
    pattern_names,
    substitute,
    walk,
)
from repro.ocal.builders import (
    empty,
    eq,
    for_,
    hash_partition,
    if_,
    lam,
    proj,
    sing,
    tup,
    unfold_r,
    v,
)


def naive_join():
    return for_(
        "x",
        v("R"),
        for_(
            "y",
            v("S"),
            if_(
                eq(proj(v("x"), 1), proj(v("y"), 1)),
                sing(tup(v("x"), v("y"))),
                empty(),
            ),
        ),
    )


class TestStructure:
    def test_nodes_are_hashable_and_comparable(self):
        assert naive_join() == naive_join()
        assert hash(naive_join()) == hash(naive_join())

    def test_literals_validate(self):
        with pytest.raises(TypeError):
            Lit([1, 2])

    def test_projection_is_one_based(self):
        with pytest.raises(ValueError):
            Proj(v("x"), 0)

    def test_prim_rejects_unknown_ops(self):
        with pytest.raises(ValueError):
            Prim("xor", (v("a"), v("b")))

    def test_children_in_field_order(self):
        node = if_(v("c"), v("a"), v("b"))
        assert children(node) == (v("c"), v("a"), v("b"))

    def test_children_of_tuple_fields(self):
        node = tup(v("a"), v("b"))
        assert children(node) == (v("a"), v("b"))

    def test_walk_counts_all_nodes(self):
        assert node_count(naive_join()) == len(list(walk(naive_join())))

    def test_map_children_identity_preserves_object(self):
        node = naive_join()
        assert map_children(node, lambda c: c) is node

    def test_map_children_rebuilds(self):
        node = tup(v("a"), v("b"))
        renamed = map_children(node, lambda c: v("z"))
        assert renamed == tup(v("z"), v("z"))


class TestPatterns:
    def test_flat_pattern(self):
        assert pattern_names("x") == ("x",)

    def test_tuple_pattern(self):
        assert pattern_names(("a", "b")) == ("a", "b")

    def test_nested_pattern(self):
        assert pattern_names((("a", "b"), "c")) == ("a", "b", "c")


class TestFreeVars:
    def test_naive_join_inputs(self):
        assert free_vars(naive_join()) == {"R", "S"}

    def test_lambda_binds(self):
        node = lam(("a", "x"), tup(v("a"), v("x"), v("free")))
        assert free_vars(node) == {"free"}

    def test_for_binds_loop_var(self):
        node = for_("x", v("R"), sing(v("x")))
        assert free_vars(node) == {"R"}

    def test_for_source_not_shadowed(self):
        node = for_("x", v("x"), sing(v("x")))
        assert free_vars(node) == {"x"}  # the source's x is free


class TestSubstitution:
    def test_simple(self):
        node = tup(v("x"), v("y"))
        assert substitute(node, "x", v("z")) == tup(v("z"), v("y"))

    def test_lambda_shadowing(self):
        node = lam("x", v("x"))
        assert substitute(node, "x", v("z")) == node

    def test_for_shadowing(self):
        node = for_("x", v("R"), sing(v("x")))
        assert substitute(node, "x", v("z")) == node

    def test_for_source_substituted_even_when_shadowed(self):
        node = for_("x", v("x"), sing(v("x")))
        result = substitute(node, "x", v("R"))
        assert result == for_("x", v("R"), sing(v("x")))

    def test_capture_avoidance_in_lambda(self):
        # (λy. x + y)[x := y] must not capture the free y.
        node = lam("y", Prim("+", (v("x"), v("y"))))
        result = substitute(node, "x", v("y"))
        assert isinstance(result, Lam)
        assert result.pattern != "y"
        assert free_vars(result) == {"y"}

    def test_capture_avoidance_in_for(self):
        node = for_("y", v("R"), sing(tup(v("x"), v("y"))))
        result = substitute(node, "x", v("y"))
        assert isinstance(result, For)
        assert result.var != "y"
        assert free_vars(result) == {"R", "y"}

    def test_fresh_name_avoids(self):
        name = fresh_name("x", {"x", "x_0"})
        assert name not in {"x", "x_0"}


class TestBlockParams:
    def test_collects_named_parameters(self):
        node = for_("xB", v("R"), sing(v("xB")), block_in="k1", block_out="k2")
        assert block_params(node) == {"k1", "k2"}

    def test_unfold_and_partition_parameters(self):
        node = App(
            unfold_r(v("f"), block_in="kb"),
            tup(App(hash_partition("s", 1), v("R")), empty()),
        )
        assert block_params(node) == {"kb", "s"}

    def test_concrete_blocks_are_not_parameters(self):
        node = for_("xB", v("R"), sing(v("xB")), block_in=64)
        assert block_params(node) == frozenset()


class TestHashConsing:
    def test_hash_is_cached_on_the_instance(self):
        node = for_("x", v("R"), sing(tup(v("x"), v("x"))))
        first = hash(node)
        assert node._hash == first
        assert hash(node) == first

    def test_equal_trees_hash_equal(self):
        a = for_("x", v("R"), sing(v("x")))
        b = for_("x", v("R"), sing(v("x")))
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)

    def test_node_size_matches_walk(self):
        node = for_("x", v("R"), sing(tup(v("x"), Prim("+", (v("x"), v("x"))))))
        from repro.ocal import node_size, walk

        assert node_size(node) == sum(1 for _ in walk(node))
        assert node_count(node) == node_size(node)

    def test_node_key_is_stable_and_cheap(self):
        from repro.ocal import node_key

        a = for_("x", v("R"), sing(v("x")))
        b = for_("x", v("R"), sing(v("x")))
        assert node_key(a) == node_key(b)
        assert node_key(a)[2] == "For"

    def test_intern_returns_canonical_instance(self):
        from repro.ocal import clear_intern_pool, intern_node

        clear_intern_pool()
        a = intern_node(for_("x", v("R"), sing(v("x"))))
        b = intern_node(for_("x", v("R"), sing(v("x"))))
        assert a is b

    def test_intern_shares_subtrees_across_programs(self):
        from repro.ocal import clear_intern_pool, intern_node

        clear_intern_pool()
        shared = sing(tup(v("x"), v("y")))
        a = intern_node(for_("x", v("R"), shared))
        b = intern_node(for_("z", v("S"), sing(tup(v("x"), v("y")))))
        assert a.body is b.body

    def test_intern_pool_bookkeeping(self):
        from repro.ocal import (
            clear_intern_pool,
            intern_node,
            intern_pool_size,
        )

        clear_intern_pool()
        assert intern_pool_size() == 0
        intern_node(tup(v("x"), v("y")))
        # the tuple plus its two variables
        assert intern_pool_size() == 3
        clear_intern_pool()
        assert intern_pool_size() == 0

    def test_interned_nodes_stay_value_equal_to_fresh_ones(self):
        from repro.ocal import intern_node

        fresh = for_("x", v("R"), sing(v("x")), block_in="k1")
        assert intern_node(fresh) == for_(
            "x", v("R"), sing(v("x")), block_in="k1"
        )
