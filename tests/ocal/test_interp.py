"""Tests for the OCAL reference interpreter — every construct."""

import pytest

from repro.ocal import InterpreterError, evaluate, run, stable_hash
from repro.ocal.ast import App, Lit
from repro.ocal.builders import (
    add,
    and_,
    app,
    avg,
    concat,
    div,
    empty,
    eq,
    flat_map,
    fold_l,
    for_,
    func_pow,
    ge,
    gt,
    hash_partition,
    head,
    if_,
    lam,
    le,
    length,
    let,
    lit,
    lt,
    mod,
    mrg,
    mul,
    ne,
    not_,
    or_,
    prim,
    proj,
    sing,
    sub,
    tail,
    tree_fold,
    tup,
    unfold_r,
    v,
    zip_,
)
from repro.ocal.interp import substitute_blocks


class TestCore:
    def test_literal(self):
        assert run(lit(42)) == 42

    def test_variable(self):
        assert run(v("x"), x=7) == 7

    def test_unbound_variable(self):
        with pytest.raises(InterpreterError):
            run(v("nope"))

    def test_lambda_and_application(self):
        assert run(app(lam("x", add(v("x"), lit(1))), lit(41))) == 42

    def test_tuple_pattern_binding(self):
        swap = lam(("a", "b"), tup(v("b"), v("a")))
        assert run(app(swap, tup(lit(1), lit(2)))) == (2, 1)

    def test_nested_pattern_binding(self):
        f = lam((("a", "b"), "c"), tup(v("a"), v("c")))
        assert run(App(f, tup(tup(lit(1), lit(2)), lit(3)))) == (1, 3)

    def test_pattern_arity_mismatch(self):
        f = lam(("a", "b"), v("a"))
        with pytest.raises(InterpreterError):
            run(App(f, lit(5)))

    def test_let(self):
        assert run(let("x", lit(10), mul(v("x"), v("x")))) == 100

    def test_tuple_and_projection(self):
        assert run(proj(tup(lit(1), lit(2), lit(3)), 2)) == 2

    def test_projection_out_of_range(self):
        with pytest.raises(InterpreterError):
            run(proj(tup(lit(1)), 2))

    def test_singleton_and_empty(self):
        assert run(sing(lit(5))) == [5]
        assert run(empty()) == []

    def test_concat(self):
        assert run(concat(sing(lit(1)), sing(lit(2)))) == [1, 2]

    def test_concat_requires_lists(self):
        with pytest.raises(InterpreterError):
            run(concat(lit(1), sing(lit(2))))

    def test_if(self):
        assert run(if_(lit(True), lit(1), lit(2))) == 1
        assert run(if_(lit(False), lit(1), lit(2))) == 2

    def test_if_requires_bool(self):
        with pytest.raises(InterpreterError):
            run(if_(lit(1), lit(1), lit(2)))

    def test_applying_non_function(self):
        with pytest.raises(InterpreterError):
            run(app(lit(5), lit(1)))


class TestPrimitives:
    @pytest.mark.parametrize(
        "expr, expected",
        [
            (add(lit(2), lit(3)), 5),
            (sub(lit(2), lit(3)), -1),
            (mul(lit(2), lit(3)), 6),
            (div(lit(7), lit(2)), 3),  # integer division on Ints
            (mod(lit(7), lit(2)), 1),
            (eq(lit(2), lit(2)), True),
            (ne(lit(2), lit(3)), True),
            (le(lit(2), lit(2)), True),
            (ge(lit(1), lit(2)), False),
            (lt(lit(1), lit(2)), True),
            (gt(lit(1), lit(2)), False),
            (and_(lit(True), lit(False)), False),
            (or_(lit(True), lit(False)), True),
            (not_(lit(True)), False),
            (prim("min2", lit(4), lit(7)), 4),
            (prim("max2", lit(4), lit(7)), 7),
        ],
    )
    def test_ops(self, expr, expected):
        assert run(expr) == expected

    def test_division_by_zero(self):
        with pytest.raises(InterpreterError):
            run(div(lit(1), lit(0)))

    def test_hash_is_stable(self):
        assert run(prim("hash", lit(42))) == run(prim("hash", lit(42)))

    def test_string_comparison(self):
        assert run(lt(lit("abc"), lit("abd"))) is True


class TestListConstructs:
    def test_flat_map(self):
        dup = flat_map(lam("x", concat(sing(v("x")), sing(v("x")))))
        assert run(app(dup, v("L")), L=[1, 2]) == [1, 1, 2, 2]

    def test_flat_map_requires_list_body(self):
        bad = flat_map(lam("x", v("x")))
        with pytest.raises(InterpreterError):
            run(app(bad, v("L")), L=[1])

    def test_fold_l_matches_paper_semantics(self):
        # foldL(c, ⊕)([v1..vn]) = ((c ⊕ v1) ⊕ v2) ⊕ … ⊕ vn
        minus = fold_l(lit(0), lam(("a", "x"), sub(v("a"), v("x"))))
        assert run(app(minus, v("L")), L=[1, 2, 3]) == -6

    def test_fold_l_empty_list_returns_init(self):
        f = fold_l(lit(99), lam(("a", "x"), v("x")))
        assert run(app(f, v("L")), L=[]) == 99

    def test_for_element_iteration(self):
        loop = for_("x", v("L"), sing(mul(v("x"), v("x"))))
        assert run(loop, L=[1, 2, 3]) == [1, 4, 9]

    def test_for_block_iteration_binds_blocks(self):
        loop = for_("b", v("L"), sing(app(length(), v("b"))), block_in=2)
        assert run(loop, L=[1, 2, 3, 4, 5]) == [2, 2, 1]

    def test_for_block_covers_all_elements(self):
        loop = for_("b", v("L"), v("b"), block_in=3)
        assert run(loop, L=list(range(10))) == list(range(10))

    def test_for_with_unbound_parameter_fails(self):
        loop = for_("b", v("L"), v("b"), block_in="k1")
        with pytest.raises(InterpreterError):
            run(loop, L=[1])

    def test_substitute_blocks_enables_execution(self):
        loop = for_("b", v("L"), v("b"), block_in="k1")
        bound = substitute_blocks(loop, {"k1": 4})
        assert run(bound, L=list(range(9))) == list(range(9))


class TestBuiltins:
    def test_head_tail(self):
        assert run(app(head(), v("L")), L=[1, 2, 3]) == 1
        assert run(app(tail(), v("L")), L=[1, 2, 3]) == [2, 3]

    def test_head_of_empty_fails(self):
        with pytest.raises(InterpreterError):
            run(app(head(), v("L")), L=[])

    def test_tail_of_empty_fails(self):
        with pytest.raises(InterpreterError):
            run(app(tail(), v("L")), L=[])

    def test_length(self):
        assert run(app(length(), v("L")), L=[5, 5, 5]) == 3

    def test_avg(self):
        assert run(app(avg(), v("L")), L=[2, 4, 6]) == 4

    def test_mrg_step(self):
        chunk, state = run(app(mrg(), tup(v("a"), v("b"))), a=[1, 3], b=[2])
        assert chunk == [1]
        assert state == ([3], [2])

    def test_mrg_step_on_empty_pair(self):
        chunk, state = run(app(mrg(), tup(v("a"), v("b"))), a=[], b=[])
        assert chunk == []
        assert state == ([], [])

    def test_zip(self):
        out = run(app(zip_(), tup(v("a"), v("b"))), a=[1, 2], b=["x", "y"])
        assert out == [(1, "x"), (2, "y")]


class TestUnfoldAndSort:
    def test_unfold_mrg_merges_sorted_lists(self):
        merge = unfold_r(mrg())
        out = run(app(merge, tup(v("a"), v("b"))), a=[1, 4, 6], b=[2, 3, 5])
        assert out == [1, 2, 3, 4, 5, 6]

    def test_insertion_sort_via_fold(self):
        # foldL([], unfoldR(mrg)) over singleton lists is a sort (§7.2).
        sort = app(fold_l(empty(), unfold_r(mrg())), v("Rs"))
        data = [5, 1, 4, 1, 5, 9, 2, 6]
        assert run(sort, Rs=[[x] for x in data]) == sorted(data)

    def test_treefold_matches_paper_ternary_example(self):
        # treeFold[3](c,f)([v1..v6]) = f(f(v1,v2,v3), f(v4,v5,v6), c)
        f = lam(
            ("a", "b", "c"),
            tup(v("a"), v("b"), v("c")),
        )
        out = run(
            app(tree_fold(3, lit(0), f), v("L")),
            L=[1, 2, 3, 4, 5, 6],
        )
        assert out == ((1, 2, 3), (4, 5, 6), 0)

    def test_treefold_two_way_merge_sort(self):
        sort = app(tree_fold(2, empty(), unfold_r(mrg())), v("Rs"))
        data = [9, 3, 7, 1, 8, 2, 5]
        assert run(sort, Rs=[[x] for x in data]) == sorted(data)

    def test_treefold_2k_way_merge_sort(self):
        # treeFold[2^k]([], unfoldR(funcPow[k](mrg))) — §7.2's final program.
        for k in (1, 2, 3):
            sort = app(
                tree_fold(2**k, empty(), unfold_r(func_pow(k, mrg()))),
                v("Rs"),
            )
            data = [((j * 7919) % 101) for j in range(25)]
            assert run(sort, Rs=[[x] for x in data]) == sorted(data)

    def test_treefold_empty_seed_returns_identity(self):
        sort = app(tree_fold(2, empty(), unfold_r(mrg())), v("Rs"))
        assert run(sort, Rs=[]) == []

    def test_funcpow_on_plain_binary_function(self):
        plus = lam(("a", "b"), add(v("a"), v("b")))
        out = run(
            app(func_pow(2, plus), tup(lit(1), lit(2), lit(3), lit(4)))
        )
        assert out == 10

    def test_funcpow_arity_checked(self):
        plus = lam(("a", "b"), add(v("a"), v("b")))
        with pytest.raises(InterpreterError):
            run(app(func_pow(2, plus), tup(lit(1), lit(2))))

    def test_generic_unfold_step(self):
        # A step that drains one element from a single list, doubling it.
        step = lam(
            "state",
            if_(
                eq(app(length(), proj(v("state"), 1)), lit(0)),
                tup(empty(), tup(empty())),
                tup(
                    sing(mul(app(head(), proj(v("state"), 1)), lit(2))),
                    tup(app(tail(), proj(v("state"), 1))),
                ),
            ),
        )
        out = run(app(unfold_r(step), tup(v("L"))), L=[1, 2, 3])
        assert out == [2, 4, 6]

    def test_generic_unfold_detects_non_progress(self):
        stuck = lam("state", tup(empty(), v("state")))
        with pytest.raises(InterpreterError):
            run(app(unfold_r(stuck), tup(v("L"))), L=[1])


class TestHashPartition:
    def test_partitions_cover_input(self):
        part = app(hash_partition(4), v("L"))
        data = list(range(20))
        out = run(part, L=data)
        assert sorted(x for bucket in out for x in bucket) == data
        assert len(out) == 4

    def test_partition_on_key_component(self):
        part = app(hash_partition(2, key_index=1), v("L"))
        data = [(1, "a"), (2, "b"), (1, "c")]
        out = run(part, L=data)
        # Tuples with equal keys land in the same bucket.
        bucket_of_1 = [b for b in out if (1, "a") in b][0]
        assert (1, "c") in bucket_of_1

    def test_stable_hash_handles_all_value_kinds(self):
        for value in (7, True, "abc", (1, "a"), [1, 2]):
            assert stable_hash(value) == stable_hash(value)

    def test_stable_hash_spreads_ints(self):
        buckets = {stable_hash(i) % 8 for i in range(100)}
        assert len(buckets) == 8


class TestExample1:
    def test_naive_join(self):
        join = for_(
            "x",
            v("R"),
            for_(
                "y",
                v("S"),
                if_(
                    eq(proj(v("x"), 1), proj(v("y"), 1)),
                    sing(tup(v("x"), v("y"))),
                    empty(),
                ),
            ),
        )
        R = [(1, 10), (2, 20)]
        S = [(2, 200), (3, 300)]
        assert run(join, R=R, S=S) == [((2, 20), (2, 200))]

    def test_block_nested_loops_join_same_bag(self):
        def body():
            return if_(
                eq(proj(v("x"), 1), proj(v("y"), 1)),
                sing(tup(v("x"), v("y"))),
                empty(),
            )

        naive = for_("x", v("R"), for_("y", v("S"), body()))
        blocked = for_(
            "xB",
            v("R"),
            for_(
                "yB",
                v("S"),
                for_("x", v("xB"), for_("y", v("yB"), body())),
                block_in=3,
            ),
            block_in=2,
        )
        R = [(i % 5, i) for i in range(8)]
        S = [(i % 5, -i) for i in range(7)]
        assert sorted(run(naive, R=R, S=S)) == sorted(run(blocked, R=R, S=S))
