"""Unit tests for each transformation rule's matching and output."""

import pytest

from repro.hierarchy import MB, hdd_ram_hierarchy, two_hdd_hierarchy
from repro.ocal import App, FlatMap, FoldL, For, Lam, TreeFold, UnfoldR, pretty
from repro.ocal.builders import (
    add,
    app,
    empty,
    eq,
    fold_l,
    for_,
    func_pow,
    if_,
    lam,
    lit,
    mrg,
    proj,
    sing,
    tree_fold,
    tup,
    unfold_r,
    v,
)
from repro.rules import (
    ApplyBlock,
    FldLToTrFld,
    HashPart,
    IncBranching,
    OrderInputs,
    RuleContext,
    SeqAc,
    SwapIter,
    all_rewrites,
    default_rules,
    is_associative_with_identity,
    match_equi_join,
    rule_by_name,
)


def naive_join(r="R", s="S"):
    return for_(
        "x",
        v(r),
        for_(
            "y",
            v(s),
            if_(
                eq(proj(v("x"), 1), proj(v("y"), 1)),
                sing(tup(v("x"), v("y"))),
                empty(),
            ),
        ),
    )


def make_ctx(**kwargs):
    defaults = dict(
        hierarchy=hdd_ram_hierarchy(32 * MB),
        input_locations={"R": "HDD", "S": "HDD"},
    )
    defaults.update(kwargs)
    return RuleContext(**defaults)


class TestApplyBlock:
    def test_blocks_a_for_loop(self):
        ctx = make_ctx()
        out = list(ApplyBlock().apply(naive_join(), ctx))
        assert len(out) == 1
        blocked = out[0]
        assert isinstance(blocked, For)
        assert isinstance(blocked.block_in, str)
        inner = blocked.body
        assert isinstance(inner, For) and inner.source == v(blocked.var)

    def test_does_not_reblock(self):
        ctx = make_ctx()
        blocked = next(iter(ApplyBlock().apply(naive_join(), ctx)))
        assert list(ApplyBlock().apply(blocked, ctx)) == []

    def test_skips_block_views(self):
        ctx = make_ctx(for_bound_vars=frozenset({"xB"}))
        loop = for_("x", v("xB"), sing(v("x")))
        assert list(ApplyBlock().apply(loop, ctx)) == []

    def test_blocks_fold_application(self):
        ctx = make_ctx()
        agg = app(fold_l(lit(0), lam(("a", "e"), add(v("a"), v("e")))), v("R"))
        out = list(ApplyBlock().apply(agg, ctx))
        assert len(out) == 1
        assert isinstance(out[0].fn, FoldL)
        assert isinstance(out[0].fn.block_in, str)

    def test_blocks_unfold_application(self):
        ctx = make_ctx()
        merge = app(unfold_r(mrg()), tup(v("R"), v("S")))
        out = list(ApplyBlock().apply(merge, ctx))
        assert len(out) == 1
        assert isinstance(out[0].fn, UnfoldR)
        assert isinstance(out[0].fn.block_in, str)

    def test_fresh_parameters_are_distinct(self):
        ctx = make_ctx()
        one = next(iter(ApplyBlock().apply(naive_join(), ctx)))
        two = next(iter(ApplyBlock().apply(naive_join(), ctx)))
        assert one.block_in != two.block_in


class TestSwapIter:
    def test_swaps_independent_loops(self):
        ctx = make_ctx()
        out = list(SwapIter().apply(naive_join(), ctx))
        assert len(out) == 1
        swapped = out[0]
        assert swapped.var == "y" and swapped.source == v("S")
        assert swapped.body.var == "x"

    def test_refuses_dependent_inner_source(self):
        ctx = make_ctx()
        dependent = for_("x", v("R"), for_("y", v("x"), sing(v("y"))))
        assert list(SwapIter().apply(dependent, ctx)) == []

    def test_block_annotations_travel_with_their_loops(self):
        ctx = make_ctx()
        loop = for_(
            "a",
            v("R"),
            for_("b", v("S"), sing(tup(v("a"), v("b"))), block_in="k2"),
            block_in="k1",
        )
        swapped = next(iter(SwapIter().apply(loop, ctx)))
        assert swapped.block_in == "k2"
        assert swapped.body.block_in == "k1"

    def test_conditional_variant(self):
        ctx = make_ctx()
        prog = for_(
            "x",
            v("R"),
            if_(
                eq(proj(v("x"), 1), lit(0)),
                for_("y", v("S"), sing(tup(v("x"), v("y")))),
                empty(),
            ),
        )
        out = list(SwapIter().apply(prog, ctx))
        assert len(out) == 1
        assert out[0].var == "y"
        inner = out[0].body
        assert inner.var == "x"

    def test_conditional_variant_requires_empty_else(self):
        ctx = make_ctx()
        prog = for_(
            "x",
            v("R"),
            if_(
                eq(proj(v("x"), 1), lit(0)),
                for_("y", v("S"), sing(v("y"))),
                sing(v("x")),
            ),
        )
        assert list(SwapIter().apply(prog, ctx)) == []

    def test_conditional_variant_requires_cond_independent_of_inner(self):
        ctx = make_ctx()
        prog = for_(
            "x",
            v("R"),
            if_(
                eq(proj(v("x"), 1), proj(v("y"), 1)),  # mentions y? no: free
                for_("y", v("S"), sing(v("y"))),
                empty(),
            ),
        )
        # The free y in the condition is *not* the loop's y (it is unbound),
        # but the syntactic check sees the name and conservatively refuses.
        assert list(SwapIter().apply(prog, ctx)) == []


class TestOrderInputs:
    def test_wraps_two_input_program(self):
        ctx = make_ctx()
        out = list(OrderInputs().apply(naive_join(), ctx))
        assert len(out) == 1
        wrapped = out[0]
        assert isinstance(wrapped, App) and isinstance(wrapped.fn, Lam)
        assert "length" in pretty(wrapped.arg)

    def test_does_not_rewrap(self):
        ctx = make_ctx()
        wrapped = next(iter(OrderInputs().apply(naive_join(), ctx)))
        assert list(OrderInputs().apply(wrapped, ctx)) == []

    def test_requires_two_inputs(self):
        ctx = make_ctx(input_locations={"R": "HDD"})
        scan = for_("x", v("R"), sing(v("x")))
        assert list(OrderInputs().apply(scan, ctx)) == []


class TestHashPart:
    def test_matches_equi_join(self):
        match = match_equi_join(naive_join())
        assert match is not None
        r, s, i, j, _ = match
        assert (r, s, i, j) == ("R", "S", 1, 1)

    def test_rejects_non_equi_condition(self):
        from repro.ocal.builders import le

        prog = for_(
            "x",
            v("R"),
            for_(
                "y",
                v("S"),
                if_(
                    le(proj(v("x"), 1), proj(v("y"), 1)),
                    sing(tup(v("x"), v("y"))),
                    empty(),
                ),
            ),
        )
        assert match_equi_join(prog) is None

    def test_rejects_blocked_loops(self):
        prog = for_(
            "x",
            v("R"),
            for_(
                "y",
                v("S"),
                if_(
                    eq(proj(v("x"), 1), proj(v("y"), 1)),
                    sing(tup(v("x"), v("y"))),
                    empty(),
                ),
            ),
            block_in="k1",
        )
        assert match_equi_join(prog) is None

    def test_produces_partition_zip_flatmap(self):
        ctx = make_ctx()
        out = list(HashPart().apply(naive_join(), ctx))
        assert len(out) == 1
        text = pretty(out[0])
        assert "partition" in text and "zip" in text and "flatMap" in text

    def test_self_join_refused(self):
        ctx = make_ctx()
        assert list(HashPart().apply(naive_join("R", "R"), ctx)) == []


class TestFldLToTrFld:
    def test_merge_fold_becomes_treefold(self):
        ctx = make_ctx(input_locations={"Rs": "HDD"})
        sort = app(fold_l(empty(), unfold_r(mrg())), v("Rs"))
        out = list(FldLToTrFld().apply(sort, ctx))
        assert len(out) == 1
        assert isinstance(out[0].fn, TreeFold)
        assert out[0].fn.arity == 2

    def test_sum_fold_becomes_treefold(self):
        ctx = make_ctx()
        agg = app(fold_l(lit(0), lam(("a", "b"), add(v("a"), v("b")))), v("R"))
        out = list(FldLToTrFld().apply(agg, ctx))
        assert len(out) == 1

    def test_wrong_identity_refused(self):
        ctx = make_ctx()
        agg = app(fold_l(lit(5), lam(("a", "b"), add(v("a"), v("b")))), v("R"))
        assert list(FldLToTrFld().apply(agg, ctx)) == []

    def test_non_associative_refused(self):
        from repro.ocal.builders import sub

        ctx = make_ctx()
        agg = app(fold_l(lit(0), lam(("a", "b"), sub(v("a"), v("b")))), v("R"))
        assert list(FldLToTrFld().apply(agg, ctx)) == []

    def test_whitelist_helper(self):
        assert is_associative_with_identity(unfold_r(mrg()), empty())
        assert not is_associative_with_identity(unfold_r(mrg()), lit(0))


class TestIncBranching:
    def test_doubles_merge_fan_in(self):
        ctx = make_ctx()
        node = tree_fold(2, empty(), unfold_r(mrg()))
        out = list(IncBranching().apply(node, ctx))
        assert len(out) == 1
        raised = out[0]
        assert raised.arity == 4
        assert raised.fn.fn.power == 2

    def test_raises_existing_funcpow(self):
        ctx = make_ctx()
        node = tree_fold(4, empty(), unfold_r(func_pow(2, mrg())))
        raised = next(iter(IncBranching().apply(node, ctx)))
        assert raised.arity == 8 and raised.fn.fn.power == 3

    def test_respects_arity_cap(self):
        ctx = make_ctx(max_treefold_arity=4)
        node = tree_fold(4, empty(), unfold_r(func_pow(2, mrg())))
        assert list(IncBranching().apply(node, ctx)) == []

    def test_plain_binary_function(self):
        ctx = make_ctx()
        node = tree_fold(2, lit(0), lam(("a", "b"), add(v("a"), v("b"))))
        out = list(IncBranching().apply(node, ctx))
        assert len(out) == 1
        assert out[0].arity == 4

    def test_arity_power_mismatch_refused(self):
        ctx = make_ctx()
        node = tree_fold(4, empty(), unfold_r(mrg()))  # power 1, arity 4
        assert list(IncBranching().apply(node, ctx)) == []


class TestSeqAc:
    def blocked_inner(self):
        return for_(
            "yB",
            v("S"),
            for_("y", v("yB"), sing(v("y"))),
            block_in="k2",
        )

    def test_annotates_blocked_device_loop(self):
        ctx = make_ctx()
        out = list(SeqAc().apply(self.blocked_inner(), ctx))
        assert len(out) == 1
        assert out[0].seq == ("HDD", "RAM")

    def test_refuses_unblocked_loop(self):
        ctx = make_ctx()
        loop = for_("y", v("S"), sing(v("y")))
        assert list(SeqAc().apply(loop, ctx)) == []

    def test_refuses_when_output_on_same_device(self):
        ctx = make_ctx(output_location="HDD")
        assert list(SeqAc().apply(self.blocked_inner(), ctx)) == []

    def test_allows_when_output_on_other_device(self):
        ctx = make_ctx(
            hierarchy=two_hdd_hierarchy(32 * MB), output_location="HDD2"
        )
        out = list(SeqAc().apply(self.blocked_inner(), ctx))
        assert len(out) == 1

    def test_refuses_when_body_touches_same_device(self):
        ctx = make_ctx()
        loop = for_(
            "xB",
            v("R"),
            for_("y", v("S"), sing(v("y"))),  # S also on HDD
            block_in="k1",
        )
        assert list(SeqAc().apply(loop, ctx)) == []

    def test_annotates_blocked_fold(self):
        ctx = make_ctx()
        agg = app(
            fold_l(
                lit(0), lam(("a", "e"), add(v("a"), v("e"))), block_in="k1"
            ),
            v("R"),
        )
        out = list(SeqAc().apply(agg, ctx))
        assert len(out) == 1
        assert out[0].fn.seq == ("HDD", "RAM")

    def test_does_not_reannotate(self):
        ctx = make_ctx()
        annotated = next(iter(SeqAc().apply(self.blocked_inner(), ctx)))
        assert list(SeqAc().apply(annotated, ctx)) == []


class TestEngine:
    def test_all_positions_visited(self):
        ctx = make_ctx()
        rewrites = all_rewrites(naive_join(), default_rules(), ctx)
        rules_seen = {r.rule for r in rewrites}
        assert {"apply-block", "swap-iter", "order-inputs", "hash-part"} <= (
            rules_seen
        )

    def test_inner_loop_blocked_independently(self):
        ctx = make_ctx()
        rewrites = all_rewrites(naive_join(), default_rules(), ctx)
        blocked = [r.program for r in rewrites if r.rule == "apply-block"]
        assert len(blocked) == 2  # outer loop and inner loop

    def test_rewrites_are_unique(self):
        ctx = make_ctx()
        rewrites = all_rewrites(naive_join(), default_rules(), ctx)
        assert len({(r.rule, r.program) for r in rewrites}) == len(rewrites)

    def test_rule_by_name(self):
        assert rule_by_name("apply-block").name == "apply-block"
        with pytest.raises(KeyError):
            rule_by_name("no-such-rule")
