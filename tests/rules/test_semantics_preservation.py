"""Property tests: applying any rule never changes what a program computes.

This is the paper's core soundness claim — "whenever a part of a program
matches e1 then this part is equivalent to and can be replaced by e2".
Rules that reorder iteration (swap-iter, hash-part, order-inputs) promise
*bag* equivalence; the rest preserve results exactly.

Strategy: run the breadth-first rewrite closure to depth **3** over a
corpus of specification programs — including hash-partition- and
treeFold-*bearing* starting points, so rules are exercised on top of
each other's output, not only on naive specs — execute every program in
the closure on random inputs with the reference interpreter, and compare
against the specification's output.  Closures are computed once per
corpus program (they do not depend on the data) and reused across
hypothesis examples.

The generative complement of this fixed corpus lives in
``tests/conformance`` (`python -m repro fuzz`).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.ocal import evaluate, substitute_blocks
from repro.ocal.builders import (
    add,
    app,
    empty,
    eq,
    flat_map,
    fold_l,
    for_,
    hash_partition,
    if_,
    lam,
    lit,
    mrg,
    proj,
    sing,
    tup,
    unfold_r,
    v,
    zip_,
)
from repro.rules import RuleContext, all_rewrites, default_rules

BLOCK_VALUES = {"k": 3}  # every named parameter gets a small block size

_CLOSURE_CACHE: dict = {}


def closure(program, input_locations, depth=3, output=None):
    """All programs reachable within `depth` rewrite steps (memoized —
    the closure is data-independent, hypothesis examples share it)."""
    key = (program, tuple(sorted(input_locations.items())), depth, output)
    cached = _CLOSURE_CACHE.get(key)
    if cached is not None:
        return cached
    ctx = RuleContext(
        hierarchy=hdd_ram_hierarchy(32 * MB),
        input_locations=input_locations,
        output_location=output,
        max_treefold_arity=8,
    )
    seen = {program}
    frontier = [program]
    for _ in range(depth):
        next_frontier = []
        for candidate in frontier:
            for rewrite in all_rewrites(candidate, default_rules(), ctx):
                if rewrite.program not in seen:
                    seen.add(rewrite.program)
                    next_frontier.append(rewrite.program)
        frontier = next_frontier
    _CLOSURE_CACHE[key] = seen
    return seen


def run_concrete(program, env):
    bindings = {}
    from repro.ocal.ast import block_params

    for name in block_params(program):
        bindings[name] = 3
    return evaluate(substitute_blocks(program, bindings), env)


def as_bag(value):
    if isinstance(value, list):
        return sorted(repr(item) for item in value)
    return value


def normalize_pairs(value):
    """Join results compared up to component swap (order-inputs)."""
    if isinstance(value, list):
        out = []
        for item in value:
            if isinstance(item, tuple) and len(item) == 2:
                out.append(tuple(sorted(map(repr, item))))
            else:
                out.append((repr(item),))
        return sorted(out)
    return value


def naive_join():
    return for_(
        "x",
        v("R"),
        for_(
            "y",
            v("S"),
            if_(
                eq(proj(v("x"), 1), proj(v("y"), 1)),
                sing(tup(v("x"), v("y"))),
                empty(),
            ),
        ),
    )


def partitioned_join(buckets=3):
    """A hash-part-*bearing* program: the GRACE-join shape with concrete
    partition nodes, so depth-3 closures apply blocking/reordering rules
    on top of hash partitioning (a rule interaction the naive corpus
    missed)."""
    inner = for_(
        "x",
        proj(v("p"), 1),
        for_(
            "y",
            proj(v("p"), 2),
            if_(
                eq(proj(v("x"), 1), proj(v("y"), 1)),
                sing(tup(v("x"), v("y"))),
                empty(),
            ),
        ),
    )
    return app(
        flat_map(lam("p", inner)),
        app(
            unfold_r(zip_()),
            tup(
                app(hash_partition(buckets, 1), v("R")),
                app(hash_partition(buckets, 1), v("S")),
            ),
        ),
    )


def treefold_sort():
    """A treeFold-*bearing* program: the external merge-sort shape, so
    closures exercise inc-branching / apply-block on an existing
    treeFold rather than only deriving one from the insertion sort."""
    return app(tree_fold_node(), v("Rs"))


def tree_fold_node():
    from repro.ocal.builders import tree_fold

    return tree_fold(2, empty(), unfold_r(mrg()))


tuples = st.tuples(st.integers(0, 6), st.integers(0, 50))
relations = st.lists(tuples, min_size=0, max_size=7)


class TestJoinClosure:
    @given(r=relations, s=relations)
    @settings(max_examples=20, deadline=None)
    def test_depth3_closure_preserves_join_bag(self, r, s):
        spec = naive_join()
        expected = normalize_pairs(run_concrete(spec, {"R": r, "S": s}))
        programs = closure(spec, {"R": "HDD", "S": "HDD"}, depth=3)
        assert len(programs) > 40
        for program in programs:
            actual = normalize_pairs(
                run_concrete(program, {"R": r, "S": s})
            )
            assert actual == expected

    def test_closure_contains_bnl_shape(self):
        from repro.ocal import For

        programs = closure(naive_join(), {"R": "HDD", "S": "HDD"}, depth=3)
        bnl_like = [
            p
            for p in programs
            if isinstance(p, For)
            and isinstance(p.block_in, str)
            and isinstance(p.body, For)
            and isinstance(p.body.block_in, str)
        ]
        assert bnl_like, "depth-3 closure should contain a doubly-blocked join"

    def test_closure_contains_hash_partitioned_join(self):
        from repro.ocal import HashPartition
        from repro.ocal.ast import walk

        programs = closure(naive_join(), {"R": "HDD", "S": "HDD"}, depth=3)
        partitioned = [
            p
            for p in programs
            if any(isinstance(n, HashPartition) for n in walk(p))
        ]
        assert partitioned, "hash-part should fire inside the join closure"


class TestHashPartitionClosure:
    """Rules applied *on top of* an existing hash-partitioned program."""

    @given(r=relations, s=relations)
    @settings(max_examples=15, deadline=None)
    def test_depth3_closure_preserves_partitioned_join_bag(self, r, s):
        spec = partitioned_join()
        expected = normalize_pairs(run_concrete(spec, {"R": r, "S": s}))
        programs = closure(spec, {"R": "HDD", "S": "HDD"}, depth=3)
        assert len(programs) > 20
        for program in programs:
            actual = normalize_pairs(
                run_concrete(program, {"R": r, "S": s})
            )
            assert actual == expected

    def test_closure_blocks_the_partitioned_loops(self):
        from repro.ocal import For
        from repro.ocal.ast import walk

        programs = closure(
            partitioned_join(), {"R": "HDD", "S": "HDD"}, depth=3
        )
        blocked = [
            p
            for p in programs
            if any(
                isinstance(n, For) and isinstance(n.block_in, str)
                for n in walk(p)
            )
        ]
        assert blocked, "apply-block should fire inside the bucket loops"


class TestSortClosure:
    @given(data=st.lists(st.integers(0, 40), min_size=0, max_size=9))
    @settings(max_examples=20, deadline=None)
    def test_sort_closure_is_still_a_sort(self, data):
        spec = app(fold_l(empty(), unfold_r(mrg())), v("Rs"))
        env = {"Rs": [[x] for x in data]}
        programs = closure(spec, {"Rs": "HDD"}, depth=3)
        assert len(programs) >= 4
        for program in programs:
            assert run_concrete(program, env) == sorted(data)

    def test_sort_closure_contains_multiway_merge(self):
        from repro.ocal import App, TreeFold

        spec = app(fold_l(empty(), unfold_r(mrg())), v("Rs"))
        programs = closure(spec, {"Rs": "HDD"}, depth=3)
        arities = {
            p.fn.arity
            for p in programs
            if isinstance(p, App) and isinstance(p.fn, TreeFold)
        }
        assert 2 in arities and 4 in arities


class TestTreeFoldClosure:
    """Rules applied *on top of* an existing treeFold program."""

    @given(data=st.lists(st.integers(0, 40), min_size=0, max_size=9))
    @settings(max_examples=15, deadline=None)
    def test_depth3_closure_of_treefold_still_sorts(self, data):
        spec = treefold_sort()
        env = {"Rs": [[x] for x in data]}
        programs = closure(spec, {"Rs": "HDD"}, depth=3)
        assert len(programs) >= 4
        for program in programs:
            assert run_concrete(program, env) == sorted(data)

    def test_closure_raises_treefold_arity(self):
        from repro.ocal import App, TreeFold

        programs = closure(treefold_sort(), {"Rs": "HDD"}, depth=3)
        arities = {
            p.fn.arity
            for p in programs
            if isinstance(p, App) and isinstance(p.fn, TreeFold)
        }
        assert max(arities) >= 4, (
            "inc-branching should widen an existing treeFold"
        )


class TestAggregationClosure:
    @given(data=st.lists(st.integers(0, 100), min_size=0, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_sum_closure_preserves_value(self, data):
        spec = app(
            fold_l(lit(0), lam(("a", "b"), add(v("a"), v("b")))), v("R")
        )
        programs = closure(spec, {"R": "HDD"}, depth=3)
        assert len(programs) >= 3
        for program in programs:
            assert run_concrete(program, {"R": data}) == sum(data)


class TestMergeClosure:
    @given(
        a=st.lists(st.integers(0, 30), min_size=0, max_size=8),
        b=st.lists(st.integers(0, 30), min_size=0, max_size=8),
    )
    @settings(max_examples=20, deadline=None)
    def test_union_closure_preserves_merge(self, a, b):
        a, b = sorted(a), sorted(b)
        spec = app(unfold_r(mrg()), tup(v("A"), v("B")))
        programs = closure(spec, {"A": "HDD", "B": "HDD"}, depth=3)
        for program in programs:
            assert run_concrete(program, {"A": a, "B": b}) == sorted(a + b)
