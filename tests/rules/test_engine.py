"""Engine-level tests: lazy generation, dedup, rebuild, scoping.

These pin down the traversal machinery itself (``iter_rewrites``,
``_make_rebuild``, ``_bound_for_child``) independently of any real
transformation rule.
"""

from repro.ocal import For, Lit, Sing, Tup, Var
from repro.ocal.builders import for_, sing, tup, v
from repro.rules import Rule, RuleContext, all_rewrites, iter_rewrites
from repro.rules.engine import _bound_for_child, _make_rebuild


class UnwrapSing(Rule):
    """Sing(e) => e — contrived so nested positions can collide."""

    name = "unwrap-sing"

    def __init__(self):
        self.applications = 0

    def apply(self, node, ctx):
        self.applications += 1
        if isinstance(node, Sing):
            yield node.item


class RenameVar(Rule):
    """Var(old) => Var(new) at every occurrence."""

    name = "rename-var"

    def __init__(self, old: str, new: str):
        self.old = old
        self.new = new

    def apply(self, node, ctx):
        if isinstance(node, Var) and node.name == self.old:
            yield Var(self.new)


class RecordScopes(Rule):
    """Never rewrites; records the for-bound variables at each position."""

    name = "record-scopes"

    def __init__(self):
        self.scopes: list[tuple[type, frozenset]] = []

    def apply(self, node, ctx):
        self.scopes.append((type(node), ctx.for_bound_vars))
        return iter(())


class TestDedupDuringGeneration:
    def test_identical_rewrites_from_different_positions_collapse(self):
        # Sing(Sing(x)): unwrapping the outer or the inner Sing both
        # produce Sing(x) — one Rewrite must come out, not two.
        program = Sing(Sing(Var("x")))
        rewrites = all_rewrites(program, [UnwrapSing()], RuleContext())
        assert len(rewrites) == 1
        assert rewrites[0].program == Sing(Var("x"))

    def test_duplicate_variants_from_one_position_collapse(self):
        class TwiceRule(Rule):
            name = "twice"

            def apply(self, node, ctx):
                if isinstance(node, Var):
                    yield Lit(0)
                    yield Lit(0)

        rewrites = all_rewrites(Var("x"), [TwiceRule()], RuleContext())
        assert len(rewrites) == 1

    def test_dedup_happens_lazily(self):
        # Consuming one rewrite must not visit the whole tree: the root
        # Sing fires first and generation stops there.
        rule = UnwrapSing()
        deep = Sing(Sing(Sing(Sing(Sing(Var("x"))))))
        iterator = iter_rewrites(deep, [rule], RuleContext())
        first = next(iterator)
        assert first.program == Sing(Sing(Sing(Sing(Var("x")))))
        assert rule.applications == 1

    def test_distinct_outcomes_are_all_kept(self):
        program = tup(v("a"), v("a"))
        rewrites = all_rewrites(
            program, [RenameVar("a", "b")], RuleContext()
        )
        # Each occurrence produces a different whole program.
        assert {r.program for r in rewrites} == {
            Tup((Var("b"), Var("a"))),
            Tup((Var("a"), Var("b"))),
        }


class TestPositions:
    def test_positions_are_recorded(self):
        program = tup(v("a"), sing(v("a")))
        rewrites = all_rewrites(
            program, [RenameVar("a", "b")], RuleContext()
        )
        positions = {r.program: r.position for r in rewrites}
        assert positions[Tup((Var("b"), Sing(Var("a"))))] == (("items", 0),)
        assert positions[Tup((Var("a"), Sing(Var("b"))))] == (
            ("items", 1),
            ("item", None),
        )

    def test_generation_order_is_preorder(self):
        program = sing(tup(v("a"), v("a")))
        rewrites = all_rewrites(
            program, [RenameVar("a", "b")], RuleContext()
        )
        assert [r.position for r in rewrites] == [
            (("item", None), ("items", 0)),
            (("item", None), ("items", 1)),
        ]


class TestMakeRebuild:
    def test_scalar_field_splice(self):
        node = for_("x", v("R"), sing(v("x")))
        rebuild = _make_rebuild(node, "source", None, lambda n: n)
        rebuilt = rebuild(v("S"))
        assert rebuilt == for_("x", v("S"), sing(v("x")))

    def test_tuple_field_splice_preserves_sibling_order(self):
        node = tup(v("a"), v("b"), v("c"))
        rebuild = _make_rebuild(node, "items", 1, lambda n: n)
        rebuilt = rebuild(v("B"))
        assert rebuilt == Tup((Var("a"), Var("B"), Var("c")))

    def test_tuple_field_splice_at_each_index(self):
        node = tup(v("a"), v("b"), v("c"))
        for index, expected in [
            (0, Tup((Var("X"), Var("b"), Var("c")))),
            (2, Tup((Var("a"), Var("b"), Var("X")))),
        ]:
            rebuild = _make_rebuild(node, "items", index, lambda n: n)
            assert rebuild(v("X")) == expected

    def test_outer_closure_composes(self):
        inner = sing(v("x"))
        outer_node = for_("x", v("R"), inner)
        outer = _make_rebuild(outer_node, "body", None, lambda n: n)
        rebuild = _make_rebuild(inner, "item", None, outer)
        assert rebuild(v("y")) == for_("x", v("R"), sing(v("y")))


class TestBoundForChild:
    def test_for_source_does_not_see_loop_variable(self):
        node = for_("x", v("R"), sing(v("x")))
        inner = frozenset({"x"})
        outer = frozenset()
        assert _bound_for_child(node, "source", inner, outer) == outer
        assert _bound_for_child(node, "body", inner, outer) == inner

    def test_non_for_nodes_use_outer_scope(self):
        node = tup(v("a"), v("b"))
        inner = frozenset({"x"})
        outer = frozenset({"y"})
        assert _bound_for_child(node, "items", inner, outer) == outer

    def test_engine_scoping_end_to_end(self):
        recorder = RecordScopes()
        program = for_(
            "x", v("R"), for_("y", sing(v("x")), sing(tup(v("x"), v("y"))))
        )
        list(iter_rewrites(program, [recorder], RuleContext()))
        by_type = {}
        for node_type, bound in recorder.scopes:
            by_type.setdefault(node_type, []).append(bound)
        # The outer For itself sits in an empty scope; the outer source
        # (Var R) sees nothing; the inner For's source sees only "x";
        # the innermost Tup sees both loop variables.
        assert frozenset() in by_type[For]
        assert by_type[Var][0] == frozenset()  # R, visited first
        assert frozenset({"x"}) in by_type[Sing][0:2]
        assert frozenset({"x", "y"}) in by_type[Tup]
