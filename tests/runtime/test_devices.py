"""Tests for the simulated devices, clock, and cache."""

import pytest

from repro.runtime import CacheSim, FlashDrive, HardDisk, Ram, SimClock


@pytest.fixture()
def clock():
    return SimClock()


class TestClock:
    def test_io_and_cpu_tracked_separately(self, clock):
        clock.advance_io(1.5)
        clock.advance_cpu(0.5)
        assert clock.now == pytest.approx(2.0)
        assert clock.io_seconds == pytest.approx(1.5)
        assert clock.cpu_seconds == pytest.approx(0.5)

    def test_negative_time_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.advance_io(-1)

    def test_reset(self, clock):
        clock.advance_io(1)
        clock.reset()
        assert clock.now == 0


class TestHardDisk:
    def make(self, clock):
        return HardDisk(
            name="HDD", clock=clock, read_init=15e-3,
            read_unit=1e-6, write_init=15e-3, write_unit=1e-6,
        )

    def test_first_read_seeks(self, clock):
        disk = self.make(clock)
        disk.read(0, 1000)
        assert disk.stats.seeks == 1
        assert clock.io_seconds == pytest.approx(15e-3 + 1000e-6)

    def test_sequential_reads_do_not_reseek(self, clock):
        disk = self.make(clock)
        disk.read(0, 1000)
        disk.read(1000, 1000)
        assert disk.stats.seeks == 1

    def test_random_reads_reseek(self, clock):
        disk = self.make(clock)
        disk.read(0, 100)
        disk.read(5000, 100)
        assert disk.stats.seeks == 2

    def test_read_write_interference_emerges(self, clock):
        disk = self.make(clock)
        disk.read(0, 100)
        disk.write(10_000, 100)   # head moves away
        disk.read(100, 100)       # …so this read seeks again
        assert disk.stats.seeks == 3

    def test_byte_counters(self, clock):
        disk = self.make(clock)
        disk.read(0, 123)
        disk.write(200, 77)
        assert disk.stats.bytes_read == 123
        assert disk.stats.bytes_written == 77

    def test_allocation_is_contiguous(self, clock):
        disk = self.make(clock)
        a = disk.allocate(100)
        b = disk.allocate(50)
        assert b.start == a.end


class TestFlashDrive:
    def make(self, clock):
        return FlashDrive(
            name="SSD", clock=clock, write_init=1.7e-3,
            write_unit=1e-7, read_unit=1e-7, erase_block=1024,
        )

    def test_reads_have_no_positioning_cost(self, clock):
        flash = self.make(clock)
        flash.read(0, 100)
        flash.read(90_000, 100)
        assert flash.stats.erases == 0
        assert clock.io_seconds == pytest.approx(200e-7)

    def test_sequential_write_erases_per_block(self, clock):
        flash = self.make(clock)
        flash.write(0, 4096)  # 4 erase blocks of 1024
        assert flash.stats.erases == pytest.approx(4, abs=1)

    def test_random_writes_erase_every_time(self, clock):
        flash = self.make(clock)
        for i in range(5):
            flash.write(i * 50_000, 10)
        assert flash.stats.erases >= 5

    def test_continuing_a_sequence_does_not_erase_again(self, clock):
        flash = self.make(clock)
        flash.write(0, 100)
        erases = flash.stats.erases
        flash.write(100, 100)  # same erase block, same sequence
        assert flash.stats.erases == erases


class TestRam:
    def test_ram_is_free(self, clock):
        ram = Ram(name="RAM", clock=clock)
        ram.read(0, 10**9)
        ram.write(0, 10**9)
        assert clock.now == 0.0


class TestCacheSim:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            CacheSim(size=1000, line_size=512, associativity=8)

    def test_cold_miss_then_hit(self):
        cache = CacheSim(size=64 * 1024, line_size=512)
        assert cache.access(0) == 1
        assert cache.access(0) == 0
        assert cache.access(100) == 0  # same line
        assert cache.miss_rate == pytest.approx(1 / 3)

    def test_capacity_eviction(self):
        cache = CacheSim(size=8 * 512, line_size=512, associativity=1)
        cache.access(0)
        # Fill the same set until line 0 is evicted (direct-mapped).
        cache.access(8 * 512)
        assert cache.access(0) == 1  # evicted → miss again

    def test_lru_within_set(self):
        cache = CacheSim(size=2 * 512 * 2, line_size=512, associativity=2)
        # Two-way set: lines 0 and 2 map to set 0.
        cache.access(0 * 512)
        cache.access(2 * 512)
        cache.access(0 * 512)          # refresh line 0
        cache.access(4 * 512)          # evicts LRU = line 2
        assert cache.access(0 * 512) == 0
        assert cache.access(2 * 512) == 1

    def test_multi_byte_access_spans_lines(self):
        cache = CacheSim(size=64 * 1024, line_size=512)
        misses = cache.access(0, 1024)
        assert misses == 2

    def test_streaming_large_array_misses_every_line(self):
        cache = CacheSim(size=16 * 1024, line_size=512)
        for addr in range(0, 64 * 1024, 512):
            cache.access(addr)
        assert cache.misses == 128

    def test_reset(self):
        cache = CacheSim(size=64 * 1024, line_size=512)
        cache.access(0)
        cache.reset()
        assert cache.accesses == 0 and cache.misses == 0
