"""Tests for the simulated executor — the 'Act' column machinery."""

import pytest

from repro.hierarchy import (
    KB,
    MB,
    hdd_flash_hierarchy,
    hdd_ram_hierarchy,
    two_hdd_hierarchy,
)
from repro.ocal.builders import (
    add,
    app,
    empty,
    eq,
    fold_l,
    for_,
    func_pow,
    hash_partition,
    if_,
    lam,
    lit,
    mrg,
    proj,
    sing,
    tree_fold,
    tup,
    unfold_r,
    v,
    zip_,
)
from repro.runtime import (
    ExecutionConfig,
    ExecutionError,
    InputSpec,
    SimExecutor,
)


def config(hierarchy=None, **kwargs):
    defaults = dict(
        hierarchy=hierarchy or hdd_ram_hierarchy(8 * MB),
        input_locations={"R": "HDD", "S": "HDD", "A": "HDD", "B": "HDD",
                         "Rs": "HDD"},
    )
    defaults.update(kwargs)
    return ExecutionConfig(**defaults)


class TestScans:
    def test_blocked_scan_costs_transfer_plus_block_seeks(self):
        loop = for_(
            "xB", v("A"), for_("x", v("xB"), sing(v("x"))), block_in=2**20
        )
        result = SimExecutor(config()).run(
            loop, {"A": InputSpec(2**24, 8)}
        )
        nbytes = 2**24 * 8
        transfer = nbytes / (30 * MB)
        seeks = (2**24 / 2**20) * 15e-3
        assert result.io_seconds == pytest.approx(transfer + seeks, rel=0.05)

    def test_unblocked_scan_streams_sequentially(self):
        # Single-element requests with no other device activity coalesce.
        loop = for_("x", v("A"), sing(v("x")))
        result = SimExecutor(config()).run(loop, {"A": InputSpec(10**6, 8)})
        assert result.stats.device("HDD").seeks == 1

    def test_interleaved_inner_scan_seeks_per_pass(self):
        nested = for_(
            "xB",
            v("R"),
            for_(
                "yB",
                v("S"),
                for_(
                    "x",
                    v("xB"),
                    for_("y", v("yB"), sing(tup(v("x"), v("y")))),
                ),
                block_in=2**15,
            ),
            block_in=2**15,
        )
        result = SimExecutor(
            config(cond_probability=0.0, output_card_override=0.0)
        ).run(
            nested,
            {"R": InputSpec(2**18, 8), "S": InputSpec(2**18, 8)},
        )
        passes = 2**18 / 2**15
        expected_bytes = 2**18 * 8 * (1 + passes)
        total_read = result.stats.device("HDD").bytes_read
        assert total_read == pytest.approx(expected_bytes, rel=0.05)


class TestFolds:
    def test_aggregation_reads_input_once(self):
        agg = app(
            fold_l(lit(0), lam(("a", "e"), add(v("a"), v("e"))),
                   block_in=2**16),
            v("A"),
        )
        result = SimExecutor(config()).run(agg, {"A": InputSpec(2**24, 8)})
        assert result.stats.device("HDD").bytes_read == pytest.approx(
            2**24 * 8
        )
        assert result.output_card == 1.0

    def test_spilled_accumulator_is_quadratic(self):
        sort = app(fold_l(empty(), unfold_r(mrg())), v("Rs"))
        tight = config(hierarchy=hdd_ram_hierarchy(1 * MB))
        small = SimExecutor(tight).run(
            sort, {"Rs": InputSpec(4 * 10**4, 8)}  # fits in 1 MiB of RAM
        )
        big = SimExecutor(
            config(hierarchy=hdd_ram_hierarchy(1 * MB))
        ).run(
            sort, {"Rs": InputSpec(4 * 10**5, 8)}  # spills to disk
        )
        # 10× input → orders of magnitude more cost once the growing
        # accumulator lives on disk.
        assert big.elapsed / small.elapsed > 100


class TestSort:
    def test_treefold_levels(self):
        sort = app(
            tree_fold(
                4, empty(), unfold_r(func_pow(2, mrg()),
                                     block_in=2**15, block_out=2**18)
            ),
            v("Rs"),
        )
        cfg = config(output_location="HDD")
        result = SimExecutor(cfg).run(sort, {"Rs": InputSpec(2**20, 8)})
        import math

        levels = math.ceil(math.log(2**20, 4))
        expected = levels * 2**20 * 8
        assert result.stats.device("HDD").bytes_read == pytest.approx(
            expected, rel=0.05
        )
        assert result.stats.device("HDD").bytes_written == pytest.approx(
            expected, rel=0.05
        )

    def test_wider_fan_in_does_less_io(self):
        def run_sort(arity, power):
            sort = app(
                tree_fold(
                    arity,
                    empty(),
                    unfold_r(func_pow(power, mrg()),
                             block_in=2**15, block_out=2**18),
                ),
                v("Rs"),
            )
            return SimExecutor(config(output_location="HDD")).run(
                sort, {"Rs": InputSpec(2**20, 8)}
            )

        assert (
            run_sort(16, 4).stats.device("HDD").bytes_read
            < run_sort(2, 1).stats.device("HDD").bytes_read
        )


class TestGrace:
    def grace(self):
        return app(
            lam(
                ("Rp", "Sp"),
                app(
                    flat_map_join(),
                    app(
                        zip_(),
                        tup(
                            app(hash_partition(128, 1), v("Rp")),
                            app(hash_partition(128, 1), v("Sp")),
                        ),
                    ),
                ),
            ),
            tup(v("R"), v("S")),
        )

    def test_reads_everything_twice_writes_once(self):
        cfg = config(cond_probability=1e-6, output_card_override=100.0)
        result = SimExecutor(cfg).run(
            self.grace(),
            {"R": InputSpec(2**21, 512), "S": InputSpec(2**16, 512)},
        )
        total = (2**21 + 2**16) * 512
        hdd = result.stats.device("HDD")
        assert hdd.bytes_read == pytest.approx(2 * total, rel=0.05)
        assert hdd.bytes_written == pytest.approx(total, rel=0.05)


def flat_map_join():
    from repro.ocal.builders import flat_map

    return flat_map(
        lam(
            "p",
            for_(
                "xB",
                proj(v("p"), 1),
                for_(
                    "yB",
                    proj(v("p"), 2),
                    for_(
                        "x",
                        v("xB"),
                        for_(
                            "y",
                            v("yB"),
                            if_(
                                eq(proj(v("x"), 1), proj(v("y"), 1)),
                                sing(tup(v("x"), v("y"))),
                                empty(),
                            ),
                        ),
                    ),
                    block_in=2**12,
                ),
                block_in=2**14,
            ),
        )
    )


class TestWriteOut:
    def scan(self):
        return for_(
            "xB", v("A"), for_("x", v("xB"), sing(v("x"))), block_in=2**16
        )

    def test_same_disk_interference_costs_seeks(self):
        same = SimExecutor(
            config(output_location="HDD", output_card_override=2.0**24)
        ).run(self.scan(), {"A": InputSpec(2**24, 8)})
        other = SimExecutor(
            config(
                hierarchy=two_hdd_hierarchy(8 * MB),
                output_location="HDD2",
                output_card_override=2.0**24,
            )
        ).run(self.scan(), {"A": InputSpec(2**24, 8)})
        assert same.elapsed > other.elapsed
        assert same.stats.device("HDD").seeks > other.stats.device(
            "HDD2"
        ).seeks

    def test_flash_output_counts_erases(self):
        result = SimExecutor(
            config(
                hierarchy=hdd_flash_hierarchy(8 * MB),
                output_location="SSD",
                output_card_override=2.0**24,
            )
        ).run(self.scan(), {"A": InputSpec(2**24, 8)})
        ssd = result.stats.device("SSD")
        assert ssd.erases >= (2**24 * 8) / (256 * KB) * 0.9
        assert ssd.seeks == 0


class TestConfigKnobs:
    def test_selectivity_shapes_output(self):
        join = for_(
            "x",
            v("R"),
            for_(
                "y",
                v("S"),
                if_(
                    eq(proj(v("x"), 1), proj(v("y"), 1)),
                    sing(tup(v("x"), v("y"))),
                    empty(),
                ),
            ),
        )
        dense = SimExecutor(config(cond_probability=1.0)).run(
            join, {"R": InputSpec(100, 8), "S": InputSpec(100, 8)}
        )
        sparse = SimExecutor(config(cond_probability=0.01)).run(
            join, {"R": InputSpec(100, 8), "S": InputSpec(100, 8)}
        )
        assert dense.output_card == pytest.approx(10_000)
        assert sparse.output_card == pytest.approx(100)

    def test_override_wins(self):
        scan = for_("x", v("A"), sing(v("x")))
        result = SimExecutor(
            config(output_card_override=42.0)
        ).run(scan, {"A": InputSpec(1000, 8)})
        assert result.output_card == 42.0

    def test_unbound_parameter_rejected(self):
        loop = for_("xB", v("A"), v("xB"), block_in="k1")
        with pytest.raises(ExecutionError):
            SimExecutor(config()).run(loop, {"A": InputSpec(10, 8)})

    def test_unbound_variable_rejected(self):
        with pytest.raises(ExecutionError):
            SimExecutor(config()).run(v("nope"), {})
