"""CompiledBackend ≡ FileBackend on every catalog workload.

The compiled backend's contract (DESIGN.md §12) is *observational
equivalence with better wall clock*: for the same program, data seed,
and hierarchy it must produce a bit-identical output bag, identical
measured per-device byte/seek counters, and therefore an identical
priced cost.  This suite pins that contract on real synthesized
winners, not just generated programs:

* every registry workload at its ``validation`` scale (the set the
  execution bench measures), plus the one validation-only workload —
  all 17 catalog entries are covered;
* every Table-1 workload's synthesized winner (the goldens' programs),
  re-executed with input cardinalities capped so the real-file runs
  stay test-sized — the tuned table1 block sizes remain baked in.

The escape hatch is pinned here too: with ``REPRO_COMPILED_EXEC=0`` the
compiled backend must fall back to the interpreted path bit-for-bit.
"""

import dataclasses

import pytest

from repro.api import Session
from repro.codegen.py_codegen import compile_exec, exec_cache_size
from repro.conformance.oracle import output_bag
from repro.runtime import CompiledBackend, FileBackend

COUNTERS = (
    "reads", "writes", "bytes_read", "bytes_written", "seeks", "erases"
)
#: table1 inputs reach 134M tuples and the joins are quadratic; parity
#: runs cap the generated data at validation-scale cardinality (the
#: *programs* keep their table1-tuned block parameters).
TABLE1_CARD_CAP = 256


def _capped(inputs: dict, cap: int | None) -> dict:
    if cap is None:
        return inputs
    return {
        name: dataclasses.replace(spec, card=min(spec.card, cap))
        for name, spec in inputs.items()
    }


def _assert_parity(job, workdir, cap=None):
    """Run the job's plan on both real backends; demand equivalence."""
    inputs = _capped(job.inputs, cap)
    runs = {}
    for cls, tag in ((FileBackend, "file"), (CompiledBackend, "compiled")):
        backend = cls(
            workdir=str(workdir / tag), seed=7, capture_output=True
        )
        runs[tag] = (
            backend.run(job.program, inputs, job.config),
            backend.last_output,
        )
    file_result, file_out = runs["file"]
    comp_result, comp_out = runs["compiled"]
    assert output_bag(comp_out) == output_bag(file_out)
    assert comp_result.output_card == file_result.output_card
    devices = set(file_result.stats.devices) | set(comp_result.stats.devices)
    for device in sorted(devices):
        file_dev = file_result.stats.device(device)
        comp_dev = comp_result.stats.device(device)
        for counter in COUNTERS:
            assert getattr(comp_dev, counter) == getattr(file_dev, counter), (
                f"{job.workload}: {device}.{counter} diverged"
            )
    # Identical counters (I/O and CPU) price to the identical cost.
    assert comp_result.elapsed == file_result.elapsed
    return file_result, comp_result


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def parity_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("parity")


def _validation_names():
    from repro.api import default_registry

    return default_registry().names(scale="validation")


def _table1_names():
    from repro.api import default_registry

    return default_registry().names(scale="table1")


def test_catalog_is_fully_covered():
    """The two parametrized sets below span the whole 17-entry catalog."""
    from repro.api import default_registry

    registry = default_registry()
    assert set(_validation_names()) | set(_table1_names()) == set(
        registry.names()
    )
    assert len(list(registry)) == 17


@pytest.mark.parametrize("name", _validation_names())
def test_validation_winner_parity(session, parity_dir, name):
    job = session.synthesize(name, scale="validation")
    _assert_parity(job, parity_dir / f"v-{name}")


@pytest.mark.parametrize("name", _table1_names())
def test_table1_winner_parity(session, parity_dir, name):
    job = session.synthesize(name, scale="table1")
    _assert_parity(job, parity_dir / f"t1-{name}", cap=TABLE1_CARD_CAP)


class TestEscapeHatch:
    def test_disabled_compiled_exec_is_bitwise_file_path(
        self, session, tmp_path, monkeypatch
    ):
        """REPRO_COMPILED_EXEC=0 must restore the interpreted path —
        same bag, same counters, same priced cost, and no new entries
        in the program cache."""
        job = session.synthesize("bnl-join", scale="validation")
        monkeypatch.setenv("REPRO_COMPILED_EXEC", "0")
        before = exec_cache_size()
        file_result, comp_result = _assert_parity(job, tmp_path)
        assert exec_cache_size() == before
        assert comp_result.backend == "compiled"
        assert file_result.backend == "file"

    def test_reenabled_compiled_exec_compiles(self, session, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_EXEC", raising=False)
        job = session.synthesize("bnl-join", scale="validation")
        before = exec_cache_size()
        compiled = compile_exec(job.program)
        assert compile_exec(job.program) is compiled  # cached
        assert exec_cache_size() >= before
