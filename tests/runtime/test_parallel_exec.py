"""Partition-parallel execution is observationally serial (DESIGN.md §13).

With ``workers > 1`` the file and compiled backends fan flatMap bucket
pipelines and merge-sort run production over a process pool, but the
replayed I/O schedule must reproduce the serial run exactly: same
output bag, same priced cost, byte-for-byte equal per-device counters.
Pinned here on the two shapes the levers target — the hash-partition
join (bucket-parallel flatMap) and the external sort (group-parallel
merge levels) — at validation scale on both backends.
"""

import pytest

from repro.api import Session
from repro.conformance.oracle import output_bag
from repro.parallel import PARALLEL_ENV
from repro.runtime.compiled_backend import CompiledBackend
from repro.runtime.file_backend import FileBackend
from repro.runtime.parallel_exec import Unencodable, decode_rt, encode_rt
from repro.runtime.filestore import MemList, Rec

COUNTERS = (
    "reads",
    "writes",
    "bytes_read",
    "bytes_written",
    "seeks",
    "erases",
)
WORKLOADS = ("grace-join", "external-sort")
BACKENDS = {"file": FileBackend, "compiled": CompiledBackend}


@pytest.fixture(scope="module")
def jobs():
    session = Session()
    return {
        name: session.synthesize(name, scale="validation")
        for name in WORKLOADS
    }


def _run(job, backend_cls, workers):
    backend = backend_cls(capture_output=True, workers=workers)
    result = backend.run(job.program, job.inputs, job.config)
    return result, backend.last_output


@pytest.fixture(scope="module")
def runs(jobs):
    out = {}
    for name, job in jobs.items():
        for kind, backend_cls in BACKENDS.items():
            for workers in (1, 2):
                out[(name, kind, workers)] = _run(job, backend_cls, workers)
    return out


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("kind", sorted(BACKENDS))
class TestParallelParity:
    def test_output_bags_identical(self, runs, workload, kind):
        _, serial = runs[(workload, kind, 1)]
        _, parallel = runs[(workload, kind, 2)]
        assert output_bag(serial) == output_bag(parallel)

    def test_priced_cost_identical(self, runs, workload, kind):
        serial, _ = runs[(workload, kind, 1)]
        parallel, _ = runs[(workload, kind, 2)]
        assert serial.elapsed == parallel.elapsed

    def test_device_counters_byte_identical(self, runs, workload, kind):
        serial, _ = runs[(workload, kind, 1)]
        parallel, _ = runs[(workload, kind, 2)]
        devices = set(serial.stats.devices) | set(parallel.stats.devices)
        for device in sorted(devices):
            theirs = serial.stats.device(device)
            ours = parallel.stats.device(device)
            for counter in COUNTERS:
                assert getattr(ours, counter) == getattr(theirs, counter), (
                    f"{workload}/{kind}: {device}.{counter}"
                )

    def test_cpu_accounting_identical(self, runs, workload, kind):
        serial, _ = runs[(workload, kind, 1)]
        parallel, _ = runs[(workload, kind, 2)]
        assert serial.stats.tuples_processed == parallel.stats.tuples_processed
        assert serial.cpu_seconds == parallel.cpu_seconds


class TestEscapeHatch:
    def test_env_zero_forces_serial_workers(self, jobs, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "0")
        job = jobs["grace-join"]
        result, output = _run(job, FileBackend, workers=4)
        baseline, expected = _run(job, FileBackend, workers=1)
        assert output_bag(output) == output_bag(expected)
        assert result.elapsed == baseline.elapsed


class TestRuntimeCodec:
    def test_scalar_and_tuple_round_trip(self):
        for value in (None, True, 7, 2.5, "x", (1, (2, "y"))):
            assert decode_rt(encode_rt(value)) == value

    def test_rec_round_trip_preserves_widths(self):
        rec = Rec((1, "abc"), widths=(8, 16))
        back = decode_rt(encode_rt(rec))
        assert isinstance(back, Rec)
        assert tuple(back) == tuple(rec)
        assert back.widths == rec.widths

    def test_memlist_round_trip(self):
        values = MemList([Rec((1,), widths=(8,)), Rec((2,), widths=(8,))],
                         sorted=True)
        back = decode_rt(encode_rt(values))
        assert isinstance(back, MemList)
        assert back.items[back.start :] == values.items[values.start :]
        assert back.sorted

    def test_shared_decode_is_not_owned(self):
        doc = encode_rt(MemList([1, 2, 3]))
        assert decode_rt(doc, shared=True).owned is False

    def test_callables_are_unencodable(self):
        with pytest.raises(Unencodable):
            encode_rt(lambda: None)
