"""Tests for the §7.2 cache-miss experiment."""

import pytest

from repro.runtime import CacheSim, run_cache_experiment, simulate_join_accesses


class TestCacheExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cache_experiment()

    def test_tiling_slashes_misses(self, result):
        # Paper: 98.2% reduction.  The exact number depends on geometry;
        # the claim's shape is an order-of-magnitude-plus reduction.
        assert result.miss_reduction > 0.9

    def test_access_counts_near_identical(self, result):
        # Tiling re-touches outer elements once per inner tile — a
        # sub-percent overhead, not a change in the work done.
        assert result.tiled_accesses == pytest.approx(
            result.untiled_accesses, rel=0.01
        )

    def test_untiled_misses_scale_with_inner_size(self):
        small = run_cache_experiment(
            outer_elems=512, inner_elems=2048, elem_bytes=8,
            cache_size=32 * 2**10, line_size=512,
        )
        large = run_cache_experiment(
            outer_elems=512, inner_elems=8192, elem_bytes=8,
            cache_size=32 * 2**10, line_size=512,
        )
        assert large.untiled_misses > small.untiled_misses * 3

    def test_fitting_inner_relation_has_no_capacity_misses(self):
        # When both relations fit the cache, tiling cannot help much:
        # everything is a cold miss either way.
        result = run_cache_experiment(
            outer_elems=64, inner_elems=64, elem_bytes=8,
            cache_size=256 * 2**10, line_size=512,
        )
        assert result.untiled_misses == result.tiled_misses

    def test_manual_access_pattern(self):
        cache = CacheSim(size=8 * 2**10, line_size=512)
        simulate_join_accesses(
            cache, outer_elems=4, inner_elems=4, elem_bytes=512
        )
        assert cache.accesses == 4 + 4 * 4
