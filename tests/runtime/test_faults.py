"""The fault-injection substrate (``repro.runtime.faults``, DESIGN.md §16).

Pins the three contracts the chaos lane builds on:

* **determinism** — one ``FaultPlan`` (seed, rates, triggers) yields one
  fault schedule; specs, docs and env round-trip exactly;
* **counter-identical recovery** — a run that absorbs only transient
  faults finishes with the same output *and* the same per-device
  read/write/seek counters as the fault-free run, because injection
  happens before side effects and accounting;
* **typed permanent failure** — retries exhausted, injected ENOSPC, or
  a deterministic trigger surface as a positioned
  :class:`ExecutionFault` (device, op, offset), never a raw traceback.
"""

import pytest

from repro.hierarchy import KB, hdd_ram_hierarchy
from repro.ocal.builders import (
    app,
    empty,
    func_pow,
    mrg,
    tree_fold,
    unfold_r,
    v,
)
from repro.runtime import ExecutionConfig, FileBackend, InputSpec
from repro.runtime.faults import (
    CHAOS_RATES,
    DEFAULT_RATES,
    DEFAULT_RETRY,
    FAULTS_ENV,
    RATE_KEYS,
    ExecutionFault,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    backoff_delays,
)

#: rates that inject nothing — the explicit "off" plan.
ZERO = {key: 0.0 for key in RATE_KEYS}

#: heavy but purely transient rates: every fault is recoverable.
TRANSIENT = {
    "read_error": 0.2,
    "write_error": 0.2,
    "torn_write": 0.1,
    "enospc": 0.0,
    "latency": 0.1,
}


def transient_plan(seed):
    """Heavy transient faults with a retry budget deep enough that the
    chance of exhausting it (0.2 ** 12 per request) is negligible —
    these plans exercise *recovery*, never permanent failure."""
    return FaultPlan(
        seed=seed,
        rates=TRANSIENT,
        retry=RetryPolicy(attempts=12, base_delay=0.0),
    )


def sort_program():
    return app(
        tree_fold(
            2,
            empty(),
            unfold_r(func_pow(1, mrg()), block_in=2**6, block_out=2**10),
        ),
        v("Rs"),
    )


def run_sort(tmp_path, name, faults, cards=400):
    """One external sort on a tiny (8 KB) root, forcing real HDD I/O."""
    backend = FileBackend(
        workdir=str(tmp_path / name),
        seed=5,
        capture_output=True,
        faults=faults,
    )
    result = backend.run(
        sort_program(),
        {"Rs": InputSpec(cards, 8, nested_runs=True)},
        ExecutionConfig(
            hierarchy=hdd_ram_hierarchy(8 * KB),
            input_locations={"Rs": "HDD"},
            output_location="HDD",
        ),
    )
    return backend, result


class TestSpecParsing:
    def test_bare_seed(self):
        plan = FaultPlan.from_spec("7")
        assert plan.seed == 7
        assert plan.rates == DEFAULT_RATES

    def test_empty_spec_means_disabled(self):
        assert FaultPlan.from_spec("") is None
        assert FaultPlan.from_spec("   ") is None

    def test_key_value_spec(self):
        plan = FaultPlan.from_spec(
            "seed=3,read_error=0.5,latency_seconds=0,attempts=6"
        )
        assert plan.seed == 3
        assert plan.rates["read_error"] == 0.5
        assert plan.rates["write_error"] == DEFAULT_RATES["write_error"]
        assert plan.latency_seconds == 0.0
        assert plan.retry.attempts == 6

    def test_per_device_override_and_allow_list(self):
        plan = FaultPlan.from_spec(
            "seed=1,devices=HDD|SSD,HDD.read_error=0.25"
        )
        assert plan.devices == frozenset({"HDD", "SSD"})
        assert plan._rate("HDD", "read_error") == 0.25
        assert plan._rate("SSD", "read_error") == DEFAULT_RATES["read_error"]

    def test_deterministic_trigger_spec(self):
        plan = FaultPlan.from_spec("seed=0,HDD.fail_read_at=3")
        assert plan.fail_at == {("HDD", "read"): 3}

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("read_error")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("warp_drive=0.5")
        with pytest.raises(ValueError):
            FaultPlan(rates={"warp_drive": 0.5})

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "9")
        assert FaultPlan.from_env().seed == 9

    def test_doc_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=4,devices=HDD,HDD.write_error=0.3,HDD.fail_write_at=2"
        )
        clone = FaultPlan.from_doc(plan.to_doc())
        assert clone.to_doc() == plan.to_doc()
        assert clone.retry == plan.retry


class TestDeterminism:
    def test_same_seed_same_schedule(self, tmp_path):
        logs = []
        for name in ("a", "b"):
            plan = transient_plan(11)
            run_sort(tmp_path, name, plan)
            logs.append(plan.log)
        assert logs[0] == logs[1]
        assert logs[0]  # heavy rates on a forced-out-of-core sort inject

    def test_child_plans_are_reproducible_and_distinct(self):
        parent = FaultPlan(seed=11, rates=TRANSIENT)
        assert parent.child_doc(0) == parent.child_doc(0)
        assert parent.child(0).seed != parent.child(1).seed
        assert parent.child(0).fail_at == {}  # triggers stay parent-only


class TestRecovery:
    def test_recovered_run_is_counter_identical(self, tmp_path):
        _, clean = run_sort(
            tmp_path, "clean", FaultPlan(seed=0, rates=ZERO)
        )
        faulty_plan = transient_plan(11)
        backend, faulty = run_sort(tmp_path, "faulty", faulty_plan)
        assert faulty_plan.injected > 0
        assert faulty.output_card == clean.output_card
        for device in ("HDD", "RAM"):
            want = clean.stats.device(device)
            got = faulty.stats.device(device)
            assert (got.reads, got.writes, got.seeks) == (
                want.reads,
                want.writes,
                want.seeks,
            )
            assert (got.bytes_read, got.bytes_written) == (
                want.bytes_read,
                want.bytes_written,
            )

    def test_no_plan_matches_zero_plan(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        _, off = run_sort(tmp_path, "off", None)
        _, zero = run_sort(tmp_path, "zero", FaultPlan(seed=0, rates=ZERO))
        hdd_off = off.stats.device("HDD")
        hdd_zero = zero.stats.device("HDD")
        assert (hdd_off.reads, hdd_off.writes, hdd_off.bytes_read) == (
            hdd_zero.reads,
            hdd_zero.writes,
            hdd_zero.bytes_read,
        )


class TestPermanentFaults:
    def test_trigger_surfaces_positioned_fault(self, tmp_path):
        plan = FaultPlan(
            seed=0, rates=ZERO, fail_at={("HDD", "read"): 1}
        )
        with pytest.raises(ExecutionFault) as excinfo:
            run_sort(tmp_path, "trigger", plan)
        fault = excinfo.value
        assert fault.device == "HDD"
        assert fault.op == "read"
        assert fault.offset >= 0
        assert "injected trigger fault" in str(fault)

    def test_injected_enospc_is_permanent(self, tmp_path):
        plan = FaultPlan(
            seed=0, rates=dict(ZERO, enospc=1.0), latency_seconds=0.0
        )
        with pytest.raises(ExecutionFault, match="device full"):
            run_sort(tmp_path, "full", plan)

    def test_retries_exhaust_into_execution_fault(self, tmp_path):
        plan = FaultPlan(
            seed=0,
            rates=dict(ZERO, write_error=1.0),
            retry=RetryPolicy(attempts=2, base_delay=0.0),
        )
        with pytest.raises(ExecutionFault, match="gave up after"):
            run_sort(tmp_path, "hopeless", plan)

    def test_injected_fault_is_a_real_oserror(self):
        fault = InjectedFault("HDD", "read", 128, "read-error")
        assert isinstance(fault, OSError)
        assert fault.errno is not None
        assert fault.device == "HDD" and fault.offset == 128


class TestBackoff:
    def test_exact_schedule_without_jitter(self):
        policy = RetryPolicy(
            attempts=4, base_delay=0.01, factor=2.0, max_delay=0.03
        )
        assert list(backoff_delays(policy)) == [0.01, 0.02, 0.03]

    def test_jitter_stays_within_band(self):
        import random

        policy = RetryPolicy(attempts=5, base_delay=0.01, max_delay=1.0)
        exact = list(backoff_delays(policy))
        jittered = list(
            backoff_delays(policy, jitter=random.Random("pin"))
        )
        for base, got in zip(exact, jittered):
            assert 0.5 * base <= got < 1.5 * base

    def test_single_attempt_means_no_delays(self):
        assert list(backoff_delays(RetryPolicy(attempts=1))) == []

    def test_default_retry_sleeps_nothing(self):
        assert all(d == 0.0 for d in backoff_delays(DEFAULT_RETRY))


class TestChaosRates:
    def test_rate_tables_cover_all_keys(self):
        assert set(DEFAULT_RATES) == set(RATE_KEYS)
        assert set(CHAOS_RATES) == set(RATE_KEYS)
