"""All execution backends behind the one ExecutionBackend interface.

The less-trodden executor paths — ``TreeFold``, ``UnfoldR`` (plugin and
generic step), ``HashPartition``, spill behavior — run against every
substrate (sim, file, compiled) through a parametrized fixture.  Assertions are the
invariants the backends share (output cardinalities, byte-counter
structure); numeric equality between the analytic model and a real
execution is checked only where the semantics pin it down.
"""

import math

import pytest

from repro.hierarchy import KB, MB, hdd_ram_hierarchy, ram_ssd_hdd_hierarchy
from repro.ocal.builders import (
    app,
    empty,
    eq,
    flat_map,
    for_,
    func_pow,
    hash_partition,
    lam,
    if_,
    mrg,
    proj,
    sing,
    tree_fold,
    tup,
    unfold_r,
    v,
    zip_,
)
from repro.runtime import (
    ExecutionConfig,
    ExecutionError,
    FileBackend,
    InputSpec,
    SimBackend,
    backend_names,
    get_backend,
)
from repro.workloads.specs import set_union_spec


@pytest.fixture(params=["sim", "file", "compiled"])
def backend(request, tmp_path):
    if request.param in ("file", "compiled"):
        return get_backend(request.param, workdir=str(tmp_path), seed=11)
    return get_backend("sim")


def config(hierarchy=None, **kwargs):
    defaults = dict(
        hierarchy=hierarchy or hdd_ram_hierarchy(8 * KB),
        input_locations={"R": "HDD", "S": "HDD", "A": "HDD", "B": "HDD",
                         "Rs": "HDD"},
    )
    defaults.update(kwargs)
    return ExecutionConfig(**defaults)


class TestRegistry:
    def test_names(self):
        assert set(backend_names()) >= {"sim", "file", "compiled"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("punchcards")

    def test_instances_pass_through(self):
        backend = SimBackend()
        assert get_backend(backend) is backend

    def test_protocol_names(self):
        from repro.runtime import CompiledBackend

        assert SimBackend().name == "sim"
        assert FileBackend().name == "file"
        assert CompiledBackend().name == "compiled"

    def test_unknown_backend_error_lists_compiled(self):
        with pytest.raises(ValueError, match="compiled"):
            get_backend("punchcards")


class TestTreeFold:
    def sort_program(self, arity=4, power=2):
        return app(
            tree_fold(
                arity,
                empty(),
                unfold_r(func_pow(power, mrg()), block_in=2**6,
                         block_out=2**10),
            ),
            v("Rs"),
        )

    def test_external_sort_runs_on_both(self, backend):
        cfg = config(output_location="HDD")
        result = backend.run(
            self.sort_program(),
            {"Rs": InputSpec(2**12, 8, nested_runs=True)},
            cfg,
        )
        assert result.output_card == 2**12
        hdd = result.stats.device("HDD")
        # Every merge level streams the whole data set through the disk.
        levels = math.ceil(math.log(2**12, 4))
        assert hdd.bytes_read >= 2**12 * 8 * levels * 0.9
        assert hdd.bytes_written >= 2**12 * 8 * levels * 0.9

    def test_file_backend_really_sorts(self, tmp_path):
        backend = get_backend("file", workdir=str(tmp_path), seed=5)
        cfg = config(output_location="HDD")
        program = self.sort_program(arity=2, power=1)
        inputs = {"Rs": InputSpec(500, 8, nested_runs=True)}
        result = backend.run(program, inputs, cfg)
        assert result.output_card == 500
        assert result.wall_seconds is not None


class TestUnfoldR:
    def test_merge_plugin_keeps_everything(self, backend):
        merge = app(unfold_r(mrg(), block_in=2**6), tup(v("A"), v("B")))
        cfg = config(output_location="HDD")
        result = backend.run(
            merge,
            {
                "A": InputSpec(2**10, 8, sorted=True),
                "B": InputSpec(2**10, 8, sorted=True),
            },
            cfg,
        )
        assert result.output_card == 2**11
        assert result.stats.device("HDD").bytes_read >= 2**11 * 8 * 0.9

    def test_generic_step_set_union(self, backend):
        cfg = config(output_location="HDD")
        result = backend.run(
            set_union_spec(),
            {
                "A": InputSpec(512, 8, sorted=True, key_domain=8192),
                "B": InputSpec(512, 8, sorted=True, key_domain=8192),
            },
            cfg,
        )
        assert 512 <= result.output_card <= 1024
        assert result.stats.device("HDD").bytes_read >= 1024 * 8 * 0.9

    def test_unbound_block_rejected(self, backend):
        merge = app(unfold_r(mrg(), block_in="k1"), tup(v("A"), v("B")))
        with pytest.raises(ExecutionError):
            backend.run(
                merge,
                {
                    "A": InputSpec(16, 8, sorted=True),
                    "B": InputSpec(16, 8, sorted=True),
                },
                config(),
            )


class TestHashPartition:
    def grace(self, buckets=16):
        join_body = lam(
            "p",
            for_(
                "xB",
                proj(v("p"), 1),
                for_(
                    "yB",
                    proj(v("p"), 2),
                    for_(
                        "x",
                        v("xB"),
                        for_(
                            "y",
                            v("yB"),
                            if_(
                                eq(proj(v("x"), 1), proj(v("y"), 1)),
                                sing(tup(v("x"), v("y"))),
                                empty(),
                            ),
                        ),
                    ),
                    block_in=2**4,
                ),
                block_in=2**4,
            ),
        )
        return app(
            lam(
                ("Rp", "Sp"),
                app(
                    flat_map(join_body),
                    app(
                        zip_(),
                        tup(
                            app(hash_partition(buckets, 1), v("Rp")),
                            app(hash_partition(buckets, 1), v("Sp")),
                        ),
                    ),
                ),
            ),
            tup(v("R"), v("S")),
        )

    def test_partitions_spill_and_reread(self, backend):
        cfg = config(
            hierarchy=hdd_ram_hierarchy(16 * KB),
            cond_probability=1e-3,
            output_card_override=64.0,
        )
        # A wide key domain keeps the real join output resident, so the
        # written bytes are the partitions on both substrates.
        result = backend.run(
            self.grace(),
            {
                "R": InputSpec(2**9, 512, key_domain=2**14),
                "S": InputSpec(2**7, 512, key_domain=2**14),
            },
            cfg,
        )
        total = (2**9 + 2**7) * 512
        hdd = result.stats.device("HDD")
        # GRACE reads everything twice: once to partition, once to join.
        assert hdd.bytes_read == pytest.approx(2 * total, rel=0.25)
        assert hdd.bytes_written == pytest.approx(total, rel=0.25)

    def test_unbound_buckets_rejected(self, backend):
        program = app(hash_partition("b1", 1), v("R"))
        with pytest.raises(ExecutionError):
            backend.run(program, {"R": InputSpec(16, 512)}, config())


class TestSpill:
    def test_oversized_output_spills_to_device(self, backend):
        # 2^9 × 2^9 product of 512-byte tuples ≫ the 16 KiB root.
        product = for_(
            "xB",
            v("R"),
            for_(
                "yB",
                v("S"),
                for_(
                    "x",
                    v("xB"),
                    for_("y", v("yB"), sing(tup(v("x"), v("y")))),
                ),
                block_in=2**4,
            ),
            block_in=2**4,
        )
        cfg = config(
            hierarchy=hdd_ram_hierarchy(16 * KB), output_location="HDD"
        )
        result = backend.run(
            product,
            {"R": InputSpec(2**8, 512), "S": InputSpec(2**6, 512)},
            cfg,
        )
        out_bytes = 2**8 * 2**6 * 1024
        assert result.output_card == 2**14
        assert result.stats.device("HDD").bytes_written >= out_bytes * 0.9

    def test_multilevel_hierarchy_accepted(self, backend):
        # A ≥3-level preset works with no call-site changes (tentpole).
        scan = for_(
            "xB", v("A"), for_("x", v("xB"), sing(v("x"))), block_in=2**6
        )
        cfg = ExecutionConfig(
            hierarchy=ram_ssd_hdd_hierarchy(8 * KB, ssd_size=1 * MB),
            input_locations={"A": "HDD"},
        )
        result = backend.run(scan, {"A": InputSpec(2**10, 8)}, cfg)
        assert result.output_card == 2**10
        assert result.stats.device("HDD").bytes_read >= 2**10 * 8 * 0.9


class TestPathSummedDeviceCosts:
    """Device pricing over hierarchy trees (DESIGN.md §8.1).

    Single-edge hierarchies keep the seed's exact numbers; deeper
    devices now price their whole path to the root, consistently with
    the estimator — pinned here so the change stays deliberate.
    """

    def test_two_level_devices_match_raw_edge_costs(self):
        from repro.hierarchy import HDD_SEEK, HDD_UNIT
        from repro.runtime import SimClock, build_devices

        devices = build_devices(hdd_ram_hierarchy(8 * KB), SimClock())
        assert devices["HDD"].read_init == HDD_SEEK
        assert devices["HDD"].read_unit == HDD_UNIT
        assert devices["HDD"].write_init == HDD_SEEK

    def test_cache_hierarchy_hdd_includes_both_hops(self):
        from repro.hierarchy import (
            CACHE_INIT,
            HDD_SEEK,
            hdd_ram_cache_hierarchy,
        )
        from repro.runtime import SimClock, build_devices

        devices = build_devices(hdd_ram_cache_hierarchy(8 * KB), SimClock())
        # Reads climb HDD→RAM (a seek) then RAM→Cache (a line fill).
        assert devices["HDD"].read_init == pytest.approx(
            HDD_SEEK + CACHE_INIT
        )
        # Writes descend Cache→RAM (free) then RAM→HDD (a seek).
        assert devices["HDD"].write_init == pytest.approx(HDD_SEEK)

    def test_three_level_chain_sums_transfer_units(self):
        from repro.hierarchy import HDD_UNIT, SSD_UNIT
        from repro.runtime import cumulative_edge_costs

        hierarchy = ram_ssd_hdd_hierarchy(8 * KB)
        costs = cumulative_edge_costs(hierarchy, "HDD")
        assert costs.read_unit == pytest.approx(HDD_UNIT + SSD_UNIT)
        assert costs.write_unit == pytest.approx(HDD_UNIT + SSD_UNIT)


class TestFileBackendMeasurement:
    def test_runs_are_reproducible_across_processes(self, tmp_path):
        scan = for_(
            "xB", v("A"), for_("x", v("xB"), sing(v("x"))), block_in=2**6
        )
        results = []
        for attempt in range(2):
            backend = get_backend(
                "file", workdir=str(tmp_path / str(attempt)), seed=99
            )
            results.append(
                backend.run(scan, {"A": InputSpec(2**10, 8)}, config())
            )
        first, second = results
        assert first.elapsed == second.elapsed
        assert (
            first.stats.device("HDD").bytes_read
            == second.stats.device("HDD").bytes_read
        )
        assert first.output_card == second.output_card

    def test_measured_fields_reported(self, tmp_path):
        backend = get_backend("file", workdir=str(tmp_path), seed=1)
        agg_scan = for_("x", v("A"), sing(v("x")))
        result = backend.run(agg_scan, {"A": InputSpec(4096, 8)}, config())
        assert result.backend == "file"
        assert result.wall_seconds is not None and result.wall_seconds >= 0
        assert result.measured_io_seconds is not None
        assert result.io_seconds > 0

    def test_blocked_scan_prices_below_naive(self, tmp_path):
        naive = for_("x", v("A"), sing(v("x")))
        blocked = for_(
            "xB", v("A"), for_("x", v("xB"), sing(v("x"))), block_in=2**8
        )
        backend = get_backend("file", workdir=str(tmp_path), seed=1)
        spec = {"A": InputSpec(2**13, 8)}
        slow = backend.run(naive, spec, config())
        fast = backend.run(blocked, spec, config())
        # One request per element vs one per block: the per-request
        # overhead (and any repositioning) must separate them.
        assert fast.elapsed < slow.elapsed


class TestConformanceRegressions:
    """Direct repros of FileBackend bugs found by the conformance fuzzer
    (`python -m repro fuzz`); the shrunk originals live under
    tests/conformance/corpus/."""

    def _run_captured(self, tmp_path, program, data, locations, specs):
        backend = FileBackend(
            workdir=str(tmp_path), data=data, capture_output=True
        )
        cfg = config(input_locations=locations)
        backend.run(program, specs, cfg)
        return backend.last_output

    def test_concat_of_two_device_inputs(self, tmp_path):
        from repro.ocal.builders import concat

        out = self._run_captured(
            tmp_path,
            concat(v("A"), v("B")),
            {"A": [-3, 7, 6], "B": [-6]},
            {"A": "HDD", "B": "HDD"},
            {"A": InputSpec(3, 8), "B": InputSpec(1, 8)},
        )
        assert sorted(out) == [-6, -3, 6, 7]

    def test_concat_must_not_mutate_shared_input(self, tmp_path):
        from repro.ocal.builders import concat, lit

        # R ⊔ [0] evaluated first, then R read again: the second read
        # must not see the appended element.
        program = for_(
            "x",
            concat(v("A"), sing(lit(99))),
            for_("y", v("A"), sing(v("y"))),
        )
        out = self._run_captured(
            tmp_path,
            program,
            {"A": [1, 2]},
            {"A": "RAM"},
            {"A": InputSpec(2, 8)},
        )
        # 3 outer iterations × the 2 original elements of A.
        assert sorted(out) == [1, 1, 1, 2, 2, 2]

    def test_lambda_step_treefold_executes(self, tmp_path):
        from repro.ocal.builders import add, lit

        program = app(
            tree_fold(2, lit(0), lam(("a", "b"), add(v("a"), v("b")))),
            v("A"),
        )
        out = self._run_captured(
            tmp_path,
            program,
            {"A": [1, 2, 4]},
            {"A": "HDD"},
            {"A": InputSpec(3, 8)},
        )
        assert out == 7

    def test_funcpow_raised_treefold_executes(self, tmp_path):
        from repro.ocal.builders import add, lit

        program = app(
            tree_fold(
                4,
                lit(0),
                func_pow(2, lam(("a", "b"), add(v("a"), v("b")))),
            ),
            v("A"),
        )
        out = self._run_captured(
            tmp_path,
            program,
            {"A": [1, 2, 4, 8, 16]},
            {"A": "HDD"},
            {"A": InputSpec(5, 8)},
        )
        assert out == 31

    def test_injected_data_overrides_generated(self, tmp_path):
        scan = for_("x", v("A"), sing(v("x")))
        out = self._run_captured(
            tmp_path,
            scan,
            {"A": [5, 5, 5]},
            {"A": "HDD"},
            {"A": InputSpec(3, 8)},
        )
        assert out == [5, 5, 5]
