"""The fuzz lane for partition-parallel execution (DESIGN.md §9, §13).

``OracleConfig.check_workers`` re-runs every file-checked generated
program on a FileBackend with a worker pool and requires bag + full
measured-counter parity against the serial run — the generative
counterpart of the workload-pinned parity tests in
``tests/runtime/test_parallel_exec.py``.
"""

from repro.conformance import OracleConfig, run_conformance


def test_generated_programs_hold_workers_parity():
    batch = run_conformance(
        seed=11,
        count=20,
        oracle_config=OracleConfig(
            closure_depth=1,
            closure_cap=24,
            check_workers=True,
            workers=2,
            # The parallel lane only needs the file baseline; skip the
            # other backends to keep this a focused, fast gate.
            check_compiled=False,
            check_sim=False,
            check_cost=False,
        ),
    )
    assert batch.ok, "\n".join(f.describe() for f in batch.failures)
    assert batch.workers_runs > 0
    assert batch.workers_runs == batch.file_runs


def test_workers_lane_counts_surface_in_summary():
    batch = run_conformance(
        seed=3,
        count=4,
        oracle_config=OracleConfig(
            closure_depth=0,
            check_workers=True,
            workers=2,
            check_compiled=False,
            check_sim=False,
            check_cost=False,
        ),
    )
    assert batch.ok
    assert "parallel runs" in batch.summary()
