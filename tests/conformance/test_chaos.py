"""The conformance chaos lane (``repro.conformance.chaos``, DESIGN.md §16).

The acceptance bar of the fault-tolerance work: a pinned batch of ≥200
seeded (program, fault-schedule) pairs across the file, compiled and
partition-parallel backends, where every run must either **recover** to
the byte-identical fault-free bag or surface one **clean positioned
fault** — zero hangs, zero corrupt bags, zero raw tracebacks.
"""

from repro.conformance import run_chaos
from repro.conformance.chaos import LANES
from repro.runtime.faults import RATE_KEYS


class TestChaosBatch:
    """One full pinned batch; the class-level cache keeps it to a
    single run however many assertions examine it."""

    _result = None

    @classmethod
    def batch(cls):
        if cls._result is None:
            cls._result = run_chaos(
                seed=0, count=25, fault_seed=7, variants=3
            )
        return cls._result

    def test_no_contract_violations(self):
        result = self.batch()
        details = [f.describe() for f in result.failures]
        assert result.failures == [], details

    def test_batch_is_large_enough(self):
        # The acceptance floor: ≥200 fault-injected pairs, spread over
        # every lane (25 programs × 3 lanes × 3 variants, minus skips).
        result = self.batch()
        assert result.pairs >= 200
        assert result.programs + result.skipped == 25
        assert result.pairs == result.programs * len(LANES) * 3

    def test_both_outcomes_are_exercised(self):
        # A batch that only recovers never tested clean-fault surfacing;
        # one that only faults never tested retry.  The pinned seed
        # exercises both, and every pair lands in exactly one bucket.
        result = self.batch()
        assert result.recovered > 0
        assert result.faulted > 0
        assert result.recovered + result.faulted == result.pairs

    def test_json_artifact_shape(self):
        doc = self.batch().to_json()
        assert doc["seed"] == 0 and doc["fault_seed"] == 7
        assert doc["pairs"] == self.batch().pairs
        assert doc["failures"] == []

    def test_summary_mentions_status(self):
        assert "OK" in self.batch().summary()


class TestChaosDeterminism:
    def test_same_seeds_same_outcome(self):
        kwargs = dict(seed=3, count=4, fault_seed=5, variants=2)
        first = run_chaos(**kwargs).to_json()
        second = run_chaos(**kwargs).to_json()
        first.pop("seconds")
        second.pop("seconds")
        assert first == second

    def test_progress_callback_sees_every_program(self):
        seen = []
        run_chaos(
            seed=0,
            count=3,
            fault_seed=1,
            variants=1,
            progress=lambda index, result: seen.append(index),
        )
        assert seen == [0, 1, 2]


class TestInjectionActuallyLands:
    def test_zero_rates_recover_everything(self):
        # With every rate forced to zero the "chaos" batch degenerates
        # to the plain differential check: all pairs recover.
        rates = {key: 0.0 for key in RATE_KEYS}
        result = run_chaos(
            seed=0, count=5, fault_seed=7, variants=1, rates=rates
        )
        assert result.failures == []
        assert result.faulted == 0
        assert result.recovered == result.pairs
