"""The generative conformance suite (ISSUE 3 tentpole).

* a pinned-seed differential batch (50 programs, rewrite-closure depth 2)
  across interpreter / SimBackend / FileBackend / CompiledBackend;
* hypothesis-driven unsized cases over random generator seeds;
* replay of every persisted counterexample in ``corpus/``;
* unit coverage for the generator's invariants and the shrinker.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance.corpus import (
    corpus_files,
    load_counterexample,
    node_from_json,
    node_to_json,
    save_counterexample,
)
from repro.conformance.generator import (
    GenConfig,
    GeneratedProgram,
    ProgramGenerator,
)
from repro.conformance.oracle import (
    Oracle,
    OracleConfig,
    output_bag,
    run_conformance,
)
from repro.conformance.shrink import shrink_counterexample
from repro.ocal import evaluate
from repro.ocal.ast import For, Node, node_size, walk
from repro.ocal.printer import pretty
from repro.ocal.typecheck import check_program

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestGenerator:
    def test_programs_are_well_typed(self):
        generator = ProgramGenerator(seed=11)
        for _ in range(100):
            gen = generator.generate()
            # check_program already ran inside generate(); re-check the
            # stated contract explicitly.
            check_program(gen.program, gen.input_types())

    def test_programs_are_interpretable(self):
        generator = ProgramGenerator(seed=5)
        list_outputs = 0
        for _ in range(60):
            gen = generator.generate()
            out = evaluate(gen.program, gen.input_values())
            if isinstance(out, list):
                list_outputs += 1
        assert list_outputs > 30  # mostly relation-valued programs

    def test_streams_are_deterministic(self):
        a = ProgramGenerator(seed=7)
        b = ProgramGenerator(seed=7)
        for _ in range(25):
            assert pretty(a.generate().program) == pretty(b.generate().program)

    def test_different_seeds_differ(self):
        a = [pretty(ProgramGenerator(seed=1).generate_at(i).program)
             for i in range(10)]
        b = [pretty(ProgramGenerator(seed=2).generate_at(i).program)
             for i in range(10)]
        assert a != b

    def test_inputs_are_encodable_kinds(self):
        generator = ProgramGenerator(seed=3)
        for _ in range(40):
            gen = generator.generate()
            for inp in gen.inputs.values():
                assert inp.kind in ("int", "pair", "runs")
                if inp.kind == "runs":
                    assert all(
                        isinstance(r, list) and len(r) == 1
                        for r in inp.values
                    )


class TestOracleBatch:
    def test_pinned_seed_batch_depth2(self):
        """The CI conformance gate: ≥50 programs, closure depth ≥2."""
        batch = run_conformance(
            seed=0,
            count=50,
            oracle_config=OracleConfig(closure_depth=2),
        )
        assert batch.ok, [f.describe() for f in batch.failures]
        # The batch must actually exercise the rewrite closure and both
        # backends — guard against a silently degenerate run.
        assert batch.closure_total >= 3 * batch.count
        assert batch.file_runs >= batch.count
        # Every file run is shadowed by a compiled run whose bag *and*
        # measured I/O counters must match (the §12 parity contract).
        assert batch.compiled_runs == batch.file_runs
        assert batch.sim_runs >= batch.count
        assert batch.cost_checked >= batch.count // 4

    def test_oracle_flags_ill_typed_program(self):
        from repro.conformance.generator import GeneratedInput, INT_LIST
        from repro.ocal.builders import proj, sing, v

        gen = GeneratedProgram(
            program=sing(proj(v("R1"), 1)),  # projecting from a list
            inputs={"R1": GeneratedInput("R1", "int", [1], "RAM")},
            result_type=INT_LIST,
        )
        report = Oracle(OracleConfig(closure_depth=0)).check(gen)
        assert not report.ok
        assert report.failures[0].kind == "typecheck"

    def test_oracle_flags_wrong_exactness_claim(self):
        """card_exact=True on a branch-dropping program must be caught:
        the simulator's worst case keeps every element, the program
        drops them all."""
        from repro.conformance.generator import GeneratedInput, INT_LIST
        from repro.ocal.builders import empty, for_, if_, lt, lit, sing, v

        gen = GeneratedProgram(
            program=for_(
                "x",
                v("R1"),
                if_(lt(v("x"), lit(0)), sing(v("x")), empty()),
            ),
            inputs={"R1": GeneratedInput("R1", "int", [1, 2], "HDD")},
            result_type=INT_LIST,
            card_exact=True,  # deliberately wrong
        )
        report = Oracle(OracleConfig(closure_depth=0)).check(gen)
        assert not report.ok
        assert report.failures[0].kind == "sim-card-mismatch"


@pytest.mark.parametrize("path", corpus_files(CORPUS_DIR) or ["<empty>"])
def test_corpus_replay(path):
    """Every persisted counterexample must stay fixed."""
    if path == "<empty>":
        pytest.skip("no corpus files")
    gen, reason = load_counterexample(path)
    report = Oracle(OracleConfig(closure_depth=2)).check(gen)
    assert report.ok, (
        f"corpus regression in {os.path.basename(path)} ({reason}): "
        + "; ".join(f.describe() for f in report.failures)
    )


class TestHypothesisIntegration:
    """Unsized cases: hypothesis drives seeds and sizes."""

    @given(
        seed=st.integers(min_value=0, max_value=50_000),
        max_size=st.integers(min_value=8, max_value=60),
    )
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_random_seed_conforms(self, seed, max_size):
        generator = ProgramGenerator(
            seed=seed, config=GenConfig(max_size=max_size)
        )
        gen = generator.generate()
        report = Oracle(OracleConfig(closure_depth=1)).check(gen)
        assert report.ok, [f.describe() for f in report.failures]


class TestOracleExemptions:
    def test_empty_scalar_fold_closure_is_clean(self):
        """fldL-to-trfld over an empty input: the simulator models the
        resulting lambda-step treeFold as a list (card 0) while the true
        output is one scalar — exempt, not unsound (DESIGN.md §9.3)."""
        from repro.conformance.generator import GeneratedInput
        from repro.ocal.builders import add, app, fold_l, lam, lit, v
        from repro.ocal.types import INT

        gen = GeneratedProgram(
            program=app(
                fold_l(lit(0), lam(("a", "b"), add(v("a"), v("b")))),
                v("R1"),
            ),
            inputs={"R1": GeneratedInput("R1", "int", [], "HDD")},
            result_type=INT,
        )
        report = Oracle(OracleConfig(closure_depth=2)).check(gen)
        assert report.ok, [f.describe() for f in report.failures]

    def test_sort_under_loop_is_cost_exempt(self):
        """Nested sorts of device inputs inside loop bodies undershoot
        any fixed estimator-vs-simulator band (loop-scaled traffic);
        seed 173 case 4 reproduced a x1140 undershoot before the
        structural exemption."""
        gen = ProgramGenerator(seed=173).generate_at(4)
        report = Oracle(OracleConfig(closure_depth=1)).check(gen)
        assert report.ok, [f.describe() for f in report.failures]
        assert not report.cost_checked  # exempted, not silently passed


class TestShrinker:
    def test_shrinks_to_minimal_for_node(self):
        """Against an artificial predicate, shrinking reaches a tiny
        well-typed witness that still satisfies the predicate."""

        class ForOracle(Oracle):
            def first_failure(self, gen):
                if any(isinstance(n, For) for n in walk(gen.program)):
                    from repro.conformance.oracle import ConformanceFailure

                    return ConformanceFailure(
                        kind="has-for",
                        detail="",
                        gen=gen,
                        program=gen.program,
                    )
                return None

        generator = ProgramGenerator(seed=9)
        gen = None
        for _ in range(30):
            candidate = generator.generate()
            if (
                any(isinstance(n, For) for n in walk(candidate.program))
                and node_size(candidate.program) > 12
            ):
                gen = candidate
                break
        assert gen is not None
        oracle = ForOracle(OracleConfig())
        failure = oracle.first_failure(gen)
        small, small_failure = shrink_counterexample(oracle, gen, failure)
        assert small_failure.kind == "has-for"
        assert node_size(small.program) < node_size(gen.program)
        assert node_size(small.program) <= 6
        check_program(small.program, small.input_types())

    def test_shrinker_prunes_unused_inputs(self):
        class AlwaysFails(Oracle):
            def first_failure(self, gen):
                from repro.conformance.oracle import ConformanceFailure

                return ConformanceFailure(
                    kind="always", detail="", gen=gen, program=gen.program
                )

        generator = ProgramGenerator(seed=4)
        gen = None
        for _ in range(40):
            candidate = generator.generate()
            if len(candidate.inputs) >= 2:
                gen = candidate
                break
        assert gen is not None
        oracle = AlwaysFails(OracleConfig())
        small, _ = shrink_counterexample(
            oracle, gen, oracle.first_failure(gen)
        )
        # An always-failing predicate shrinks the program to an atom, so
        # at most one input can survive the pruning.
        assert len(small.inputs) <= 1
        assert node_size(small.program) <= 3


class TestCorpusSerialization:
    def test_node_json_roundtrip(self):
        generator = ProgramGenerator(seed=13)
        for _ in range(20):
            program = generator.generate().program
            assert node_from_json(node_to_json(program)) == program

    def test_save_and_load_roundtrip(self, tmp_path):
        generator = ProgramGenerator(seed=21)
        gen = generator.generate()
        path = save_counterexample(str(tmp_path), gen, "unit-test")
        loaded, reason = load_counterexample(path)
        assert reason == "unit-test"
        assert loaded.program == gen.program
        assert loaded.input_values() == gen.input_values()
        assert loaded.input_locations() == gen.input_locations()


class TestOutputBag:
    def test_bag_ignores_list_order(self):
        assert output_bag([1, 2, 3]) == output_bag([3, 1, 2])

    def test_bag_preserves_multiplicity(self):
        assert output_bag([1, 1, 2]) != output_bag([1, 2, 2])

    def test_pair_swap_normalization(self):
        assert output_bag([(1, 2)], pair_swap=True) == output_bag(
            [(2, 1)], pair_swap=True
        )
        assert output_bag([(1, 2)]) != output_bag([(2, 1)])

    def test_scalar_outputs_compare_directly(self):
        assert output_bag(7) == output_bag(7)
        assert output_bag(7) != output_bag(8)

    def test_rec_normalizes_to_tuple(self):
        from repro.runtime.filestore import Rec

        assert output_bag([Rec((1, 2), (8, 8))]) == output_bag([(1, 2)])
