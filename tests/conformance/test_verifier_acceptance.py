"""The static verifier must accept everything the conformance stack
produces: generated programs, their bounded rewrite closures, shrinker
candidates, and the persisted counterexample corpus.

This is the completeness half of the verifier's contract (DESIGN.md
§15): soundness alone would be trivially satisfied by rejecting
everything, so this lane pins that well-typed, well-placed programs —
exactly the population the fuzzer feeds to every backend — come back
with zero *error* diagnostics (warnings like the shared-list EFF001
lint are allowed; the generator deliberately produces ``x ⊔ x``).
"""

import os

from repro.analysis import errors, verify_program
from repro.conformance.corpus import corpus_files, load_counterexample
from repro.conformance.generator import GenConfig, ProgramGenerator
from repro.conformance.shrink import _candidates
from repro.hierarchy import hdd_ram_hierarchy
from repro.ocal.typecheck import OcalTypeError, check_program
from repro.rules import RuleContext, default_rules, iter_rewrites

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

HIERARCHY = hdd_ram_hierarchy()


def _verify(gen):
    return errors(
        verify_program(
            gen.program,
            hierarchy=HIERARCHY,
            input_types=gen.input_types(),
            input_locations=gen.input_locations(),
        )
    )


def test_verifier_accepts_generated_programs():
    generator = ProgramGenerator(seed=11, config=GenConfig(max_size=40))
    for gen in generator.stream(60):
        found = _verify(gen)
        assert not found, [d.render() for d in found]


def test_verifier_accepts_rewrite_closure():
    generator = ProgramGenerator(seed=23, config=GenConfig(max_size=30))
    rules = default_rules()
    checked = 0
    for gen in generator.stream(12):
        ctx = RuleContext(
            hierarchy=HIERARCHY,
            input_locations=gen.input_locations(),
            output_location=None,
        )
        for rewrite in iter_rewrites(gen.program, rules, ctx):
            found = errors(
                verify_program(
                    rewrite.program,
                    hierarchy=HIERARCHY,
                    input_types=gen.input_types(),
                    input_locations=gen.input_locations(),
                )
            )
            assert not found, (
                rewrite.rule,
                [d.render() for d in found],
            )
            checked += 1
    assert checked > 0


def test_shrinker_candidates_stay_verifiable():
    # Every candidate the shrinker may propose is type-preserving by
    # construction; the verifier must agree so a shrunk counterexample
    # is still a verifiable witness.
    generator = ProgramGenerator(seed=5, config=GenConfig(max_size=30))
    checked = 0
    for gen in generator.stream(8):
        for candidate in _candidates(gen):
            try:
                check_program(
                    candidate.program, candidate.input_types()
                )
            except OcalTypeError:
                continue  # the shrinker itself discards these
            found = _verify(candidate)
            assert not found, [d.render() for d in found]
            checked += 1
    assert checked > 0


def test_verifier_accepts_persisted_corpus():
    paths = corpus_files(CORPUS_DIR)
    assert paths, "corpus must not be empty"
    for path in paths:
        gen, _kind = load_counterexample(path)
        found = _verify(gen)
        assert not found, (path, [d.render() for d in found])
