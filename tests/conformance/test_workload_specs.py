"""Registry-driven conformance: every catalog spec passes the oracle.

The central registry is the single source of workload truth, so the
differential oracle consumes it directly: each workload's *naive spec*
runs — together with a bounded rewrite closure — through the reference
interpreter, the analytic SimBackend, and the real-file FileBackend on
small concrete inputs derived from the workload's own input schema.

A workload added to the catalog is covered here automatically; no
second name → spec table exists to fall out of sync.
"""

import pytest

from repro.api import default_registry
from repro.conformance import OracleConfig, check_workload_spec
from repro.conformance.workloads import workload_input_kinds, workload_program

REGISTRY = default_registry()
CONFIG = OracleConfig(closure_depth=1, closure_cap=12)


@pytest.mark.parametrize(
    "name", [workload.name for workload in REGISTRY]
)
def test_catalog_spec_passes_the_differential_oracle(name):
    report = check_workload_spec(REGISTRY.get(name), config=CONFIG)
    assert report.ok, report.failures[0].describe()
    assert report.closure_size >= 1


def test_input_kinds_derive_from_the_workload_schema():
    kinds = workload_input_kinds(
        REGISTRY.get("bnl-join").experiment("validation")
    )
    assert kinds == {"R": "pair", "S": "pair"}
    kinds = workload_input_kinds(
        REGISTRY.get("external-sort").experiment("validation")
    )
    assert kinds == {"Rs": "runs"}
    kinds = workload_input_kinds(
        REGISTRY.get("multiset-union-mult").experiment("table1")
    )
    assert kinds == {"A": "pair", "B": "pair"}


def test_generated_inputs_respect_sortedness():
    gen = workload_program(REGISTRY.get("dup-removal"))
    (inp,) = gen.inputs.values()
    assert inp.sorted
    assert inp.values == sorted(inp.values)
    gen = workload_program(REGISTRY.get("multiset-union-mult"))
    for inp in gen.inputs.values():
        firsts = [pair[0] for pair in inp.values]
        assert firsts == sorted(firsts)
        assert len(set(firsts)) == len(firsts)  # unique multiset values
        assert all(mult >= 1 for _, mult in inp.values)
