"""Property-based tests: simplification preserves numeric value."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    as_expr,
    ceil,
    floor,
    simplify,
    smax,
    smin,
    summation,
    var,
)

VAR_NAMES = ("x", "y", "k")


def _leaf():
    return st.one_of(
        st.integers(min_value=0, max_value=12).map(as_expr),
        st.sampled_from(VAR_NAMES).map(var),
    )


def _compound(children):
    return st.one_of(
        st.tuples(children, children).map(lambda p: p[0] + p[1]),
        st.tuples(children, children).map(lambda p: p[0] * p[1]),
        st.tuples(children, children).map(lambda p: p[0] - p[1]),
        st.tuples(children, children).map(lambda p: smax(p[0], p[1])),
        st.tuples(children, children).map(lambda p: smin(p[0], p[1])),
        children.map(ceil),
        children.map(floor),
        # Divide only by positive constants to keep evaluation total.
        st.tuples(children, st.integers(min_value=1, max_value=7)).map(
            lambda p: p[0] / p[1]
        ),
    )


EXPRESSIONS = st.recursive(_leaf(), _compound, max_leaves=12)

ENVS = st.fixed_dictionaries(
    {name: st.integers(min_value=1, max_value=40) for name in VAR_NAMES}
)


@given(expr=EXPRESSIONS, env=ENVS)
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_value(expr, env):
    expected = expr.evaluate(env)
    actual = simplify(expr).evaluate(env)
    assert math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-9)


@given(expr=EXPRESSIONS, env=ENVS)
@settings(max_examples=100, deadline=None)
def test_simplify_is_idempotent(expr, env):
    once = simplify(expr)
    twice = simplify(once)
    assert math.isclose(
        once.evaluate(env), twice.evaluate(env), rel_tol=1e-9, abs_tol=1e-9
    )


@given(
    lower=st.integers(min_value=0, max_value=5),
    width=st.integers(min_value=0, max_value=8),
    a=st.integers(min_value=0, max_value=6),
    b=st.integers(min_value=0, max_value=6),
    c=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=150, deadline=None)
def test_polynomial_sums_have_exact_closed_forms(lower, width, a, b, c):
    j = var("j")
    body = as_expr(a) + as_expr(b) * j + as_expr(c) * j * j
    expr = summation("j", lower, lower + width, body)
    expected = sum(a + b * jv + c * jv * jv for jv in range(lower, lower + width + 1))
    simplified = simplify(expr)
    assert "sum" not in str(simplified)
    assert simplified.evaluate({}) == expected


@given(expr=EXPRESSIONS)
@settings(max_examples=100, deadline=None)
def test_simplify_never_invents_variables(expr):
    assert simplify(expr).free_vars() <= expr.free_vars()
