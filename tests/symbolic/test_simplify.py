"""Tests for the simplification engine, including closed forms of sums."""

from fractions import Fraction

import pytest

from repro.symbolic import (
    Const,
    Div,
    Max,
    Var,
    ceil,
    const,
    expr_key,
    floor,
    is_nonneg,
    log2,
    simplify,
    smax,
    smin,
    summation,
    var,
)


class TestConstantFolding:
    def test_addition(self):
        assert simplify(const(2) + const(3)) == Const(5)

    def test_multiplication(self):
        assert simplify(const(2) * const(3) * var("x") * const(0)) == Const(0)

    def test_division(self):
        assert simplify(const(7) / const(2)) == Const(Fraction(7, 2))

    def test_nested(self):
        expr = (const(1) + const(1)) * (const(6) / const(3))
        assert simplify(expr) == Const(4)

    def test_zero_division_detected(self):
        with pytest.raises(ZeroDivisionError):
            simplify(var("x") / const(0))


class TestCollection:
    def test_like_terms_collected(self):
        x = var("x")
        assert simplify(x + x + x) == simplify(3 * x)

    def test_subtraction_cancels(self):
        x = var("x")
        assert simplify(x - x) == Const(0)

    def test_product_powers_merge(self):
        x = var("x")
        assert expr_key(x * x * x) == expr_key(x ** 3)

    def test_division_cancels_monomials(self):
        x, k = var("x"), var("k")
        assert simplify((x * k) / k) == x

    def test_division_by_monomial_keeps_negative_power(self):
        x, k = var("x"), var("k")
        expr = simplify(x / k * k)
        assert expr == x

    def test_distribution(self):
        x, y = var("x"), var("y")
        assert expr_key((x + y) * 2) == expr_key(2 * x + 2 * y)

    def test_sum_of_quotients_with_common_denominator(self):
        x, k = var("x"), var("k")
        assert expr_key(x / k + x / k) == expr_key(2 * x / k)


class TestMaxMin:
    def test_max_constant_folding(self):
        assert simplify(smax(const(3), const(5))) == Const(5)

    def test_max_with_zero_dropped_for_nonneg(self):
        x = var("x")
        assert simplify(smax(x, const(0))) == x

    def test_max_duplicates_removed(self):
        x = var("x")
        assert simplify(smax(x, x)) == x

    def test_min_with_zero_is_zero_for_nonneg(self):
        assert simplify(smin(var("x"), const(0))) == Const(0)

    def test_max_flattens_nested(self):
        x, y, z = var("x"), var("y"), var("z")
        expr = simplify(smax(smax(x, y), z))
        assert isinstance(expr, Max)
        assert len(expr.operands) == 3

    def test_max_keeps_positive_constant(self):
        expr = simplify(smax(var("x"), const(2)))
        assert isinstance(expr, Max)


class TestRounding:
    def test_ceil_of_constant(self):
        assert simplify(ceil(const(Fraction(7, 2)))) == Const(4)

    def test_floor_of_constant(self):
        assert simplify(floor(const(Fraction(7, 2)))) == Const(3)

    def test_ceil_of_integer_expression_is_dropped(self):
        expr = simplify(ceil(ceil(var("x") / 2)))
        # inner ceil makes the operand integral, outer ceil disappears
        assert expr == simplify(ceil(var("x") / 2))

    def test_ceil_of_negative_fraction(self):
        assert simplify(ceil(const(Fraction(-7, 2)))) == Const(-3)


class TestLog:
    def test_log2_of_power_of_two(self):
        assert simplify(log2(const(1024))) == Const(10)

    def test_log2_of_variable_kept(self):
        assert "log2" in str(simplify(log2(var("x"))))


class TestClosedFormSums:
    def test_constant_body(self):
        # sum_{j=0}^{n} 1 == n + 1
        expr = summation("j", 0, var("n"), const(1))
        assert expr_key(expr) == expr_key(var("n") + 1)

    def test_linear_body_is_insertion_sort_shape(self):
        # sum_{j=0}^{x-1} (j+1) == x(x+1)/2 — the naive-sort transfer count
        x = var("x")
        expr = summation("j", 0, x - 1, var("j") + 1)
        assert expr_key(expr) == expr_key(x * (x + 1) / 2)

    def test_insertion_sort_cost_formula(self):
        # Section 7.2: sum_{j=0}^{x-1} (I + (j+1)U) = x·I + x(x+1)/2·U
        x, init, unit = var("x"), var("I"), var("U")
        expr = summation("j", 0, x - 1, init + (var("j") + 1) * unit)
        expected = x * init + x * (x + 1) / 2 * unit
        assert expr_key(expr) == expr_key(expected)

    def test_quadratic_body(self):
        expr = summation("j", 0, var("n"), var("j") ** 2)
        n = var("n")
        expected = n * (n + 1) * (2 * n + 1) / 6
        assert expr_key(expr) == expr_key(expected)

    def test_cubic_body(self):
        expr = summation("j", 0, var("n"), var("j") ** 3)
        n = var("n")
        expected = (n * (n + 1) / 2) ** 2
        assert expr_key(expr) == expr_key(expected)

    def test_nonzero_lower_bound(self):
        expr = summation("j", 2, 5, var("j"))
        assert simplify(expr) == Const(2 + 3 + 4 + 5)

    def test_coefficient_free_of_bound_var(self):
        expr = summation("j", 0, var("n") - 1, var("c") * var("j"))
        n, c = var("n"), var("c")
        assert expr_key(expr) == expr_key(c * n * (n - 1) / 2)

    def test_opaque_when_body_not_polynomial(self):
        expr = summation("j", 0, var("n"), log2(var("j") + 1))
        assert "sum" in str(simplify(expr))

    def test_opaque_sum_still_evaluates(self):
        expr = summation("j", 0, var("n"), log2(var("j") + 1))
        simplified = simplify(expr)
        assert simplified.evaluate({"n": 3}) == pytest.approx(
            expr.evaluate({"n": 3})
        )


class TestSignAnalysis:
    def test_vars_assumed_nonneg(self):
        assert is_nonneg(var("x"))

    def test_products_and_sums(self):
        assert is_nonneg(var("x") * var("y") + 3)

    def test_negative_constant(self):
        assert not is_nonneg(const(-1))

    def test_difference_not_provable(self):
        assert not is_nonneg(var("x") - var("y"))

    def test_even_power_always_nonneg(self):
        assert is_nonneg((var("x") - var("y")) ** 2)


class TestEquivalenceSpotChecks:
    ENV = {"x": 37.0, "y": 11.0, "k": 3.0, "n": 9.0}

    @pytest.mark.parametrize(
        "expr",
        [
            (var("x") + var("y")) * var("k") - var("x"),
            var("x") / var("k") + var("y") / var("k"),
            smax(var("x"), var("y")) * smin(var("x"), var("y")),
            ceil(var("x") / var("k")) * var("k"),
            summation("j", 0, var("n"), var("j") * var("k") + 1),
            (var("x") + 1) ** 2 - var("x") ** 2,
        ],
    )
    def test_simplification_preserves_value(self, expr):
        assert simplify(expr).evaluate(self.ENV) == pytest.approx(
            expr.evaluate(self.ENV)
        )
