"""Hash-consing and per-instance caches on symbolic expressions (ISSUE 5)."""

from repro.symbolic import (
    Add,
    Const,
    Div,
    Max,
    Sum,
    Var,
    clear_expr_intern_pool,
    expr_intern_pool_size,
    intern_expr,
    simplify,
    var,
)


class TestInternExpr:
    def test_equal_structures_become_pointer_equal(self):
        a = intern_expr(var("x") * 2 + var("y"))
        b = intern_expr(var("x") * 2 + var("y"))
        assert a is b

    def test_children_are_interned_bottom_up(self):
        a = intern_expr(Div(var("x") + 1, var("k")))
        b = intern_expr(Max((var("x") + 1, var("z"))))
        assert a.numerator is b.operands[0]

    def test_distinct_structures_stay_distinct(self):
        assert intern_expr(var("x")) is not intern_expr(var("y"))
        assert intern_expr(Const(2)) is not intern_expr(Const(3))

    def test_pool_size_and_clear(self):
        clear_expr_intern_pool()
        before = expr_intern_pool_size()
        intern_expr(var("fresh_pool_probe") + 41)
        assert expr_intern_pool_size() > before
        clear_expr_intern_pool()
        assert expr_intern_pool_size() == 0

    def test_interning_preserves_evaluation(self):
        expr = Sum("j", Const(0), var("n"), Var("j") * 2) / var("n")
        interned = intern_expr(expr)
        env = {"n": 7}
        assert interned == expr
        assert interned.evaluate(env) == expr.evaluate(env)


class TestInstanceCaches:
    def test_hash_is_cached_on_the_instance(self):
        expr = var("x") + var("y") * 3
        first = hash(expr)
        assert expr._hash == first
        assert hash(expr) == first

    def test_free_vars_cached_and_correct(self):
        expr = Add((var("x"), Div(var("y"), var("x"))))
        assert expr.free_vars() == frozenset({"x", "y"})
        assert expr._free == frozenset({"x", "y"})
        # Sum keeps its historical contract: the bound variable's
        # occurrences in the body are reported too.
        s = Sum("j", Const(0), var("n"), Var("j") + var("m"))
        assert s.free_vars() == frozenset({"j", "n", "m"})

    def test_equal_expressions_share_cached_hash_semantics(self):
        a = var("x") * 2
        b = var("x") * 2
        assert hash(a) == hash(b)
        assert a == b


class TestSimplifyMemo:
    def test_simplify_is_memoized_by_structure(self):
        expr = var("x") + var("x")
        first = simplify(expr)
        second = simplify(var("x") + var("x"))
        assert first is second

    def test_memoized_simplify_still_correct(self):
        expr = (var("x") + 1) * (var("x") + 1)
        out = simplify(expr)
        assert out.evaluate({"x": 3}) == 16.0
