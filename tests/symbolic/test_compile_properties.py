"""Property tests for the compiled expression evaluator (ISSUE 5).

The fast lane's contract is *exact* agreement with the interpreted
reference: compiled evaluation must return bit-identical floats (and
raise the same exception types at the same inputs) as
:meth:`Expr.evaluate`.  A seeded generator — the conformance suite's
seeding style — drives randomly shaped expressions over random
environments, including ``Fraction`` constants and integer powers.
"""

import math
import random
from fractions import Fraction

import pytest

from repro.symbolic import (
    Add,
    Ceil,
    Const,
    Div,
    Floor,
    Log2,
    Max,
    Min,
    Mul,
    Pow,
    Sum,
    Var,
    compile_expr,
    intern_expr,
)
from repro.symbolic.compile import CompiledExpr

VAR_NAMES = ("x", "y", "k1", "bout")

#: Environment values deliberately include evaluation hazards: zero
#: denominators, non-positive log arguments, Fractions, floats and ints.
ENV_VALUES = (0, 1, 2, 3, 7, 1000, 0.5, 2.0**20, Fraction(3, 2), Fraction(-1, 4))


def _gen_expr(rng: random.Random, depth: int, bound: tuple[str, ...] = ()):
    """A random well-formed expression of bounded depth."""
    if depth <= 0 or rng.random() < 0.25:
        roll = rng.random()
        if roll < 0.45:
            names = VAR_NAMES + bound
            return Var(rng.choice(names))
        if roll < 0.70:
            return Const(Fraction(rng.randint(-30, 90), rng.randint(1, 12)))
        return Const(rng.randint(-6, 60))
    kind = rng.randrange(10)
    child = lambda: _gen_expr(rng, depth - 1, bound)  # noqa: E731
    if kind == 0:
        return Add(tuple(child() for _ in range(rng.randint(1, 4))))
    if kind == 1:
        return Mul(tuple(child() for _ in range(rng.randint(1, 3))))
    if kind == 2:
        return Div(child(), child())
    if kind == 3:
        return Pow(child(), rng.choice([-3, -2, -1, 0, 1, 2, 3, 4]))
    if kind == 4:
        return Max(tuple(child() for _ in range(rng.randint(1, 3))))
    if kind == 5:
        return Min(tuple(child() for _ in range(rng.randint(1, 3))))
    if kind == 6:
        return Ceil(child())
    if kind == 7:
        return Floor(child())
    if kind == 8:
        return Log2(child())
    var = f"j{len(bound)}"
    return Sum(
        var,
        Const(rng.randint(-2, 3)),
        Const(rng.randint(-2, 7)),
        _gen_expr(rng, depth - 1, bound + (var,)),
    )


def _outcome(thunk):
    """(tag, value-or-exception-type) for exact comparison."""
    try:
        return ("ok", thunk())
    except Exception as error:  # noqa: BLE001 - the type IS the outcome
        return ("err", type(error))


class TestCompiledMatchesInterpreted:
    @pytest.mark.parametrize("seed", range(8))
    def test_exact_equality_on_random_expressions(self, seed):
        for index in range(400):
            rng = random.Random((seed, index, "compile-prop").__repr__())
            expr = _gen_expr(rng, rng.randint(1, 5))
            env = {
                name: rng.choice(ENV_VALUES)
                for name in expr.free_vars()
            }
            compiled = compile_expr(expr)
            want = _outcome(lambda: expr.evaluate(env))
            got = _outcome(lambda: compiled(env))
            # Exact float equality, not approx: the fast lane must be
            # bit-identical to the interpreter.
            assert want == got, (
                f"seed={seed} index={index}: interpreted {want} != "
                f"compiled {got} for {expr}"
            )

    def test_fraction_constants_compile_exactly(self):
        expr = Const(Fraction(10**15 + 1, 3)) * Var("x") + Const(Fraction(-7, 11))
        env = {"x": Fraction(5, 2)}
        assert compile_expr(expr)(env) == expr.evaluate(env)

    def test_integer_powers_including_negative(self):
        expr = Pow(Var("x"), -3) + Pow(Var("x"), 4) + Pow(Const(-2), 2)
        env = {"x": 3}
        assert compile_expr(expr)(env) == expr.evaluate(env)
        with pytest.raises(ZeroDivisionError):
            compile_expr(Pow(Var("x"), -1))({"x": 0})

    def test_empty_range_sum_matches(self):
        expr = Sum("j", Const(5), Const(2), Div(Const(1), Var("j")))
        assert compile_expr(expr)({}) == expr.evaluate({}) == 0.0

    def test_unbound_variable_raises_keyerror_with_message(self):
        compiled = compile_expr(Var("missing") + 1)
        with pytest.raises(KeyError, match="unbound symbolic variable"):
            compiled({})

    def test_division_by_zero_matches_interpreter(self):
        compiled = compile_expr(Div(Const(1), Var("x")))
        with pytest.raises(ZeroDivisionError):
            compiled({"x": 0})

    def test_log2_domain_error_matches_interpreter(self):
        compiled = compile_expr(Log2(Var("x")))
        with pytest.raises(ValueError):
            compiled({"x": 0})
        assert compiled({"x": 8}) == 3.0

    def test_empty_max_min_raise_valueerror_like_interpreter(self):
        # Only constructible directly (smax/smin reject zero operands),
        # but the exception type must still match the interpreter's.
        for node in (Max(()), Min(())):
            with pytest.raises(ValueError):
                node.evaluate({})
            with pytest.raises(ValueError):
                compile_expr(node)({})

    def test_overflowing_constant_raises_at_evaluation_not_compile(self):
        # float(10**400) overflows; the interpreter raises per probe
        # (where domain guards map it to inf), so compilation must
        # succeed and defer the error to evaluation.
        expr = Const(Fraction(10**400)) + Var("x")
        compiled = compile_expr(expr)
        with pytest.raises(OverflowError):
            expr.evaluate({"x": 1})
        with pytest.raises(OverflowError):
            compiled({"x": 1})


class TestCompiledExprSurface:
    def test_vars_tuple_is_sorted_free_vars(self):
        compiled = compile_expr(Var("y") * Var("a") + Var("m"))
        assert compiled.vars == ("a", "m", "y")

    def test_call_positional_aligns_with_vars(self):
        expr = Var("a") + Var("b") * 2
        compiled = compile_expr(expr)
        assert compiled.vars == ("a", "b")
        assert compiled.call_positional((3, 4)) == expr.evaluate(
            {"a": 3, "b": 4}
        )

    def test_evaluate_many_batches(self):
        expr = Var("x") * Var("x")
        compiled = compile_expr(expr)
        envs = [{"x": v} for v in (1.0, 2.0, 3.0)]
        assert compiled.evaluate_many(envs) == [1.0, 4.0, 9.0]

    def test_compile_cache_returns_same_object_for_equal_structure(self):
        a = compile_expr(Var("x") + 1)
        b = compile_expr(Var("x") + 1)
        assert a is b

    def test_compiled_expr_is_interned(self):
        compiled = CompiledExpr(Var("q") / 2)
        assert compiled.expr is intern_expr(Var("q") / 2)
