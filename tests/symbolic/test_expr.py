"""Unit tests for the symbolic expression language."""

import math
from fractions import Fraction

import pytest

from repro.symbolic import (
    Add,
    Const,
    Div,
    Max,
    Mul,
    Sum,
    Var,
    as_expr,
    ceil,
    ceil_div,
    ceil_log2,
    const,
    floor,
    log2,
    smax,
    smin,
    summation,
    var,
)


class TestConstruction:
    def test_const_normalizes_fractions(self):
        assert Const(Fraction(4, 2)) == Const(2)

    def test_const_accepts_float(self):
        assert Const(0.5) == Const(Fraction(1, 2))

    def test_as_expr_passthrough(self):
        x = var("x")
        assert as_expr(x) is x

    def test_as_expr_int(self):
        assert as_expr(7) == Const(7)

    def test_as_expr_rejects_bool(self):
        with pytest.raises(TypeError):
            as_expr(True)

    def test_as_expr_rejects_strings(self):
        with pytest.raises(TypeError):
            as_expr("x")

    def test_operator_overloading_builds_trees(self):
        x, y = var("x"), var("y")
        expr = (x + y) * 2 - x / y
        assert isinstance(expr, Add)

    def test_pow_requires_int(self):
        with pytest.raises(TypeError):
            var("x") ** 0.5

    def test_expressions_are_hashable(self):
        x = var("x")
        d = {x + 1: "a", x * 2: "b"}
        assert d[var("x") + 1] == "a"

    def test_equality_is_structural(self):
        assert var("x") + 1 == var("x") + 1
        assert var("x") + 1 != var("y") + 1

    def test_smax_requires_operand(self):
        with pytest.raises(ValueError):
            smax()

    def test_smin_requires_operand(self):
        with pytest.raises(ValueError):
            smin()


class TestEvaluate:
    def test_arithmetic(self):
        x, y = var("x"), var("y")
        expr = (x + 2) * y - x / 2
        assert expr.evaluate({"x": 4, "y": 3}) == pytest.approx(16.0)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            var("x").evaluate({})

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            (var("x") / var("y")).evaluate({"x": 1, "y": 0})

    def test_max_min(self):
        assert smax(var("x"), 3).evaluate({"x": 5}) == 5
        assert smin(var("x"), 3).evaluate({"x": 5}) == 3

    def test_ceil_floor(self):
        assert ceil(var("x") / 4).evaluate({"x": 9}) == 3
        assert floor(var("x") / 4).evaluate({"x": 9}) == 2

    def test_ceil_is_robust_to_float_noise(self):
        # 0.1 * 3 / 0.3 is 1.0000000000000002 in floats; ceil must be 1.
        expr = ceil(var("a") * 3 / var("b"))
        assert expr.evaluate({"a": 0.1, "b": 0.3}) == 1

    def test_log2(self):
        assert log2(var("x")).evaluate({"x": 8}) == pytest.approx(3.0)

    def test_log2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log2(var("x")).evaluate({"x": 0})

    def test_ceil_log2(self):
        assert ceil_log2(const(9)).evaluate({}) == 4

    def test_sum_inclusive_bounds(self):
        expr = summation("j", 0, var("n"), var("j"))
        assert expr.evaluate({"n": 4}) == 10

    def test_sum_shadowing(self):
        expr = summation("j", 1, 3, var("j") * var("k"))
        assert expr.evaluate({"k": 2, "j": 99}) == 12

    def test_power(self):
        assert (var("x") ** 3).evaluate({"x": 2}) == 8

    def test_negative_power(self):
        assert (var("x") ** -1).evaluate({"x": 4}) == pytest.approx(0.25)


class TestSubstitute:
    def test_substitute_variable(self):
        expr = var("x") + var("y")
        assert expr.substitute({"x": 3}).evaluate({"y": 4}) == 7

    def test_substitute_with_expression(self):
        expr = var("x") * 2
        substituted = expr.substitute({"x": var("y") + 1})
        assert substituted.evaluate({"y": 4}) == 10

    def test_substitute_respects_sum_binding(self):
        expr = summation("j", 0, var("n"), var("j") + var("c"))
        substituted = expr.substitute({"j": 100, "c": 1})
        # The bound j must not be replaced; c must.
        assert substituted.evaluate({"n": 2}) == (0 + 1) + (1 + 1) + (2 + 1)

    def test_substitute_in_bounds(self):
        expr = summation("j", 0, var("n"), const(1))
        assert expr.substitute({"n": 5}).evaluate({}) == 6


class TestFreeVars:
    def test_free_vars_collects_names(self):
        expr = (var("x") + var("y")) * smax(var("z"), 1)
        assert expr.free_vars() == {"x", "y", "z"}

    def test_sum_bound_var_is_still_reported_in_body(self):
        # free_vars is a syntactic occurrence check used for closure tests;
        # the Sum body mentions j even though it is bound.
        expr = summation("j", 0, var("n"), var("j"))
        assert "n" in expr.free_vars()


class TestPrinting:
    def test_str_round_trips_semantics(self):
        expr = (var("x") + 1) * var("y")
        assert str(expr) == "(x + 1)*y"

    def test_str_of_fraction(self):
        assert str(const(Fraction(1, 2))) == "1/2"

    def test_str_of_functions(self):
        assert str(smax(var("x"), const(1))) == "max(x, 1)"
        assert str(ceil_div(var("x"), var("k"))) == "ceil(x/k)"

    def test_str_of_sum(self):
        expr = summation("j", 0, var("n"), var("j"))
        assert str(expr) == "sum(j=0..n, j)"
