"""Plan documents: ship a synthesized algorithm, re-execute it bit-identically.

The acceptance loop: ``Job.to_json()`` → ``Job.from_json()`` →
``job.run()`` reproduces the original execution exactly — on the
analytic simulator *and* on the real-file backend (same seed, same
counters) — for several Table-1 workloads, without ever invoking the
synthesizer again (search-stat counters stay zero and the Synthesizer
class is fenced off during replay).
"""

import json

import pytest

from repro.api import PLAN_FORMAT, Job, Session
from repro.codegen.plan import PlanError

WORKLOADS = ("aggregation", "multiset-union", "dup-removal")


@pytest.fixture(scope="module")
def jobs():
    session = Session()
    return session.synthesize_all(WORKLOADS)


def _device_counters(result):
    return {
        name: (
            stats.reads,
            stats.writes,
            stats.bytes_read,
            stats.bytes_written,
            stats.seeks,
            stats.erases,
        )
        for name, stats in result.execution.stats.devices.items()
    }


@pytest.mark.parametrize("workload", WORKLOADS)
class TestRoundTrip:
    def _round_trip(self, jobs, workload) -> tuple[Job, Job]:
        job = next(j for j in jobs if j.workload == workload)
        # Through an actual JSON byte string, like a file on the wire.
        blob = json.dumps(job.to_json(), sort_keys=True)
        return job, Job.from_json(json.loads(blob))

    def test_sim_execution_is_bit_identical(self, jobs, workload):
        job, loaded = self._round_trip(jobs, workload)
        original = job.run(backend="sim")
        replayed = loaded.run(backend="sim")
        assert replayed.execution.elapsed == original.execution.elapsed
        assert replayed.execution.output_card == original.execution.output_card
        assert _device_counters(replayed) == _device_counters(original)

    def test_file_execution_is_bit_identical(self, jobs, workload, tmp_path):
        job, loaded = self._round_trip(jobs, workload)
        original = job.run(
            backend="file", seed=7, workdir=str(tmp_path / "a")
        )
        replayed = loaded.run(
            backend="file", seed=7, workdir=str(tmp_path / "b")
        )
        # The priced cost and every measured counter must match; only
        # wall-clock (real time) may differ between the two runs.
        assert replayed.execution.elapsed == original.execution.elapsed
        assert replayed.execution.output_card == original.execution.output_card
        assert _device_counters(replayed) == _device_counters(original)

    def test_loaded_job_never_searches(self, jobs, workload, monkeypatch):
        from repro.search.synthesizer import Synthesizer

        job, loaded = self._round_trip(jobs, workload)

        def forbidden(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("plan replay must not invoke the synthesizer")

        monkeypatch.setattr(Synthesizer, "synthesize", forbidden)
        result = loaded.run(backend="sim")
        assert result.elapsed > 0
        # Search-stat counters of a loaded plan stay zero.
        assert loaded.search.space == 0
        assert loaded.search.costed == 0
        assert result.to_json()["search"]["space"] == 0


class TestDocuments:
    def test_format_mismatch_rejected(self, jobs):
        document = jobs[0].to_json()
        document["format"] = "repro-plan/999"
        with pytest.raises(PlanError, match="repro-plan/999"):
            Job.from_json(document)
        document.pop("format")
        with pytest.raises(PlanError, match="unsupported plan document"):
            Job.from_json(document)

    def test_malformed_node_tree_raises_value_error_not_key_error(self, jobs):
        # The codec's error contract: a truncated/hand-edited program
        # tree surfaces as ValueError, never a bare KeyError.
        document = jobs[0].to_json()
        document["program"] = {}
        with pytest.raises(ValueError, match="unknown"):
            Job.from_json(document)

    def test_non_object_document_rejected_cleanly(self):
        with pytest.raises(PlanError, match="must be a JSON object"):
            Job.from_json([])
        with pytest.raises(PlanError, match="must be a JSON object"):
            Job.from_json("repro-plan/1")

    def test_version_drift_warns_but_loads(self, jobs):
        document = jobs[0].to_json()
        document["repro_version"] = "0.0.0-other"
        with pytest.warns(UserWarning, match="0.0.0-other"):
            Job.from_json(document)

    def test_document_is_self_contained(self, jobs):
        document = jobs[0].to_json()
        assert document["format"] == PLAN_FORMAT
        assert document["workload"] == jobs[0].workload
        assert document["config"]["hierarchy"]["nodes"]
        assert document["inputs"]
        assert document["parameter_values"] == jobs[0].plan.parameter_values

    def test_save_and_load_file(self, jobs, tmp_path):
        path = jobs[0].save(str(tmp_path / "plan.json"))
        loaded = Job.load(path)
        assert loaded.workload == jobs[0].workload
        assert loaded.derivation == jobs[0].derivation
        assert loaded.plan.parameter_values == jobs[0].plan.parameter_values

    def test_session_load_plan_applies_backend_defaults(self, jobs, tmp_path):
        path = jobs[0].save(str(tmp_path / "plan.json"))
        session = Session(backend="sim")
        loaded = session.load_plan(path)
        assert loaded.backend == "sim"
        assert loaded.run().elapsed > 0
