"""The central workload registry: the single source of name → spec truth."""

import pytest

from repro.api import Workload, WorkloadError, WorkloadRegistry, default_registry
from repro.bench.table1 import ALL_EXPERIMENTS
from repro.bench.validation import VALIDATION_WORKLOADS, validation_experiment


class TestDefaultCatalog:
    def test_covers_all_16_table1_workloads_exactly_once(self):
        # The acceptance invariant: every Table-1 row is reachable from
        # the registry under exactly one canonical name.
        registry = default_registry()
        table1_titles = [
            workload.experiment("table1").name
            for workload in registry
            if "table1" in workload.scales
        ]
        expected = [factory().name for factory in ALL_EXPERIMENTS]
        assert len(table1_titles) == 16
        assert sorted(table1_titles) == sorted(expected)
        assert len(set(table1_titles)) == 16  # no title claimed twice

    def test_validation_names_match_the_legacy_catalog(self):
        registry = default_registry()
        assert set(registry.names(scale="validation")) == {
            "bnl-join",
            "grace-join",
            "product-writeout-hdd",
            "product-writeout-hdd2",
            "product-writeout-flash",
            "external-sort",
            "set-union",
            "multiset-union",
            "column-store-5",
            "dup-removal",
            "aggregation",
            "aggregation-ram-ssd-hdd",
        }

    def test_every_workload_instantiates_at_every_declared_scale(self):
        for workload in default_registry():
            for scale in workload.scales:
                experiment = workload.experiment(scale)
                assert experiment.spec is not None
                assert experiment.input_annots

    def test_validation_scale_experiments_keep_registry_names(self):
        # CLI output and validation reports key on the registry name.
        registry = default_registry()
        for name in registry.names(scale="validation"):
            assert registry.experiment(name, "validation").name == name

    def test_default_scale_prefers_validation(self):
        registry = default_registry()
        assert registry.get("aggregation").default_scale == "validation"
        assert registry.get("bnl-with-cache").default_scale == "table1"

    def test_tags_select_workload_families(self):
        registry = default_registry()
        joins = {w.name for w in registry.with_tag("join")}
        assert "bnl-join" in joins and "grace-join" in joins
        assert "aggregation" not in joins


class TestRegistryBehavior:
    def test_unknown_name_lists_registered_ones(self):
        with pytest.raises(WorkloadError, match="tape-robot.*aggregation"):
            default_registry().get("tape-robot")

    def test_missing_scale_is_an_error(self):
        with pytest.raises(WorkloadError, match="no 'validation' scale"):
            default_registry().experiment("bnl-with-cache", "validation")

    def test_duplicate_registration_rejected(self):
        registry = WorkloadRegistry()
        workload = default_registry().get("aggregation")
        registry.register(workload)
        with pytest.raises(WorkloadError, match="already registered"):
            registry.register(workload)

    def test_workload_requires_known_scales(self):
        with pytest.raises(WorkloadError, match="unknown scale"):
            Workload(name="w", scales={"jumbo": lambda: None})
        with pytest.raises(WorkloadError, match="no scales"):
            Workload(name="w", scales={})


class TestLegacyViews:
    """The bench-module views are projections of the registry, not copies."""

    def test_validation_workloads_view_matches_registry(self):
        assert set(VALIDATION_WORKLOADS) == set(
            default_registry().names(scale="validation")
        )
        experiment = VALIDATION_WORKLOADS["aggregation"]()
        assert experiment.name == "aggregation"

    def test_validation_experiment_still_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown validation workload"):
            validation_experiment("tape-robot")
        with pytest.raises(ValueError, match="unknown validation workload"):
            validation_experiment("bnl-with-cache")  # table1-only
