"""CLI surface of the front door: run --json, synth --save-plan, exec --plan."""

import json

import pytest

from repro import cli


def test_run_json_emits_machine_readable_record(capsys):
    assert cli.main(["run", "aggregation", "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["workload"] == "aggregation"
    assert record["backend"] == "sim"
    assert record["derivation"] == ["apply-block", "seq-ac"]
    assert record["opt_cost"] > 0
    assert record["search"]["space"] > 0
    assert record["execution"]["elapsed"] > 0
    assert record["execution"]["devices"]["HDD"]["bytes_read"] > 0


def test_run_unknown_workload_exits_2(capsys):
    assert cli.main(["run", "tape-robot"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_run_unknown_backend_exits_2(capsys):
    assert cli.main(["run", "aggregation", "--backend", "gpu"]) == 2
    assert "unknown execution backend" in capsys.readouterr().err


def test_run_table1_only_workload_uses_table1_scale(capsys):
    # multiset-diff has no validation twin; `run` falls back to the
    # full-size experiment instead of erroring.
    assert cli.main(["run", "multiset-diff", "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["scale"] == "table1"


def test_synth_exec_round_trip_without_research(
    capsys, tmp_path, monkeypatch
):
    plan_path = str(tmp_path / "plan.json")
    assert cli.main(["synth", "aggregation", "--save-plan", plan_path]) == 0
    out = capsys.readouterr().out
    assert "derivation" in out
    assert plan_path in out

    # Replaying the plan must never touch the synthesizer.
    from repro.search.synthesizer import Synthesizer

    def forbidden(self, *args, **kwargs):  # pragma: no cover - guard
        raise AssertionError("exec must not invoke the synthesizer")

    monkeypatch.setattr(Synthesizer, "synthesize", forbidden)
    assert cli.main(["exec", "--plan", plan_path, "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["workload"] == "aggregation"
    assert record["search"]["space"] == 0
    assert record["execution"]["elapsed"] > 0


def test_run_compiled_backend_round_trips_through_plan(capsys, tmp_path):
    plan_path = str(tmp_path / "plan.json")
    assert cli.main([
        "run", "aggregation", "--backend", "compiled",
        "--workdir", str(tmp_path / "w"), "--json", "--save-plan", plan_path,
    ]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["backend"] == "compiled"
    # The plan document records its backend…
    with open(plan_path) as handle:
        assert json.load(handle)["backend"] == "compiled"
    # …and exec replays on it without --backend.
    assert cli.main([
        "exec", "--plan", plan_path, "--json",
        "--workdir", str(tmp_path / "w2"),
    ]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["backend"] == "compiled"


def test_exec_unknown_backend_lists_compiled(capsys, tmp_path):
    plan_path = str(tmp_path / "plan.json")
    assert cli.main(["synth", "aggregation", "--save-plan", plan_path]) == 0
    capsys.readouterr()
    assert cli.main(["exec", "--plan", plan_path, "--backend", "gpu"]) == 2
    err = capsys.readouterr().err
    assert "unknown execution backend" in err
    assert "compiled" in err


def test_fuzz_compiled_backend_lane(capsys):
    assert cli.main([
        "fuzz", "--seed", "0", "--count", "3", "--backend", "compiled",
        "--no-save", "--progress-every", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "compiled runs" in out


def test_exec_missing_plan_exits_2(capsys, tmp_path):
    code = cli.main(["exec", "--plan", str(tmp_path / "nope.json")])
    assert code == 2
    assert "cannot load plan" in capsys.readouterr().err


def test_exec_garbage_bytes_plan_exits_2(capsys, tmp_path):
    # Not even JSON: must exit 2 with a clean message, never traceback.
    path = tmp_path / "garbage.json"
    path.write_bytes(b"\x00\xff{not json")
    assert cli.main(["exec", "--plan", str(path)]) == 2
    assert "cannot load plan" in capsys.readouterr().err


def test_exec_structurally_corrupt_plan_exits_2(capsys, tmp_path):
    # Valid JSON, valid format tag, nonsense body (a null program used
    # to escape the load-time error net as an AttributeError traceback).
    plan_path = tmp_path / "plan.json"
    assert cli.main(
        ["synth", "aggregation", "--save-plan", str(plan_path)]
    ) == 0
    capsys.readouterr()
    doc = json.loads(plan_path.read_text())
    for field, value in (("program", None), ("config", None)):
        bad = dict(doc)
        bad[field] = value
        plan_path.write_text(json.dumps(bad))
        assert cli.main(["exec", "--plan", str(plan_path)]) == 2
        assert "cannot load plan" in capsys.readouterr().err


def test_exec_unusable_workdir_exits_2_with_one_line(capsys, tmp_path):
    # The suite runs as root, where permission bits don't bite, so the
    # unwritable-workdir case is simulated by pointing --workdir at an
    # existing *file*: creating the directory fails with a real OSError.
    plan_path = str(tmp_path / "plan.json")
    assert cli.main(["synth", "aggregation", "--save-plan", plan_path]) == 0
    capsys.readouterr()
    blocker = tmp_path / "not-a-directory"
    blocker.write_text("occupied")
    code = cli.main([
        "exec", "--plan", plan_path, "--backend", "file",
        "--workdir", str(blocker),
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "cannot execute plan: workdir unusable" in err
    # One-line diagnosis, never a traceback.
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err


def test_exec_injected_fault_exits_1_with_position(capsys, tmp_path, monkeypatch):
    # A permanent device fault during execution is an *execution*
    # failure (exit 1), reported with device/op/offset — distinct from
    # the exit-2 can't-even-start lane above.
    plan_path = str(tmp_path / "plan.json")
    assert cli.main(["synth", "aggregation", "--save-plan", plan_path]) == 0
    capsys.readouterr()
    monkeypatch.setenv("REPRO_FAULTS", "seed=0,HDD.fail_read_at=1")
    code = cli.main([
        "exec", "--plan", plan_path, "--backend", "file",
        "--workdir", str(tmp_path / "w"),
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "execution fault: device HDD: read at offset" in err
    assert "Traceback" not in err


def test_exec_rejects_incompatible_plan_format(capsys, tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"format": "repro-plan/0"}))
    assert cli.main(["exec", "--plan", str(path)]) == 2
    assert "repro-plan/0" in capsys.readouterr().err


def test_run_on_file_backend_with_save_plan(capsys, tmp_path):
    plan_path = str(tmp_path / "plan.json")
    code = cli.main(
        [
            "run", "aggregation",
            "--backend", "file",
            "--workdir", str(tmp_path / "files"),
            "--json",
            "--save-plan", plan_path,
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    record = json.loads(captured.out)
    assert record["backend"] == "file"
    assert record["execution"]["wall_seconds"] is not None
    # The plan lands on disk and the JSON stdout stays pure.
    with open(plan_path) as handle:
        assert json.load(handle)["workload"] == "aggregation"


def test_run_text_output_prints_table_row(capsys):
    assert cli.main(["run", "aggregation"]) == 0
    out = capsys.readouterr().out
    assert "Experiment" in out and "Act/Opt" in out
    assert "aggregation" in out
    assert "derivation: apply-block -> seq-ac" in out
    assert "tuned parameters:" in out


def test_exec_text_output_prints_summary(capsys, tmp_path):
    plan_path = str(tmp_path / "plan.json")
    assert cli.main(
        ["synth", "aggregation", "--save-plan", plan_path, "--json"]
    ) == 0
    capsys.readouterr()
    assert cli.main(["exec", "--plan", plan_path]) == 0
    out = capsys.readouterr().out
    assert "aggregation:" in out and "act=" in out


def test_list_shows_workloads_presets_and_backends(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "aggregation" in out
    assert "[table1,validation]" in out
    assert "hdd-ram" in out
    assert "sim" in out and "file" in out


def test_run_rejects_mismatched_hierarchy_preset(capsys):
    # The two-hdd preset has no SSD node for the flash write-out.
    code = cli.main(
        ["run", "product-writeout-flash", "--hierarchy", "two-hdd"]
    )
    assert code == 2
    assert "has no node(s) ['SSD']" in capsys.readouterr().err


def test_run_hierarchy_preset_override(capsys):
    code = cli.main(
        [
            "run", "aggregation",
            "--hierarchy", "ram-ssd-hdd",
            "--ram-size", str(8 * 1024),
            "--json",
        ]
    )
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert "SSD" in record["execution"]["devices"]


@pytest.mark.parametrize("strategy", ["beam", "exhaustive-bfs"])
def test_run_accepts_every_strategy(capsys, strategy):
    assert cli.main(
        ["run", "aggregation", "--strategy", strategy, "--json"]
    ) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["search"]["strategy"] == strategy


def test_run_jobs_flag_flows_to_search_and_backend(capsys):
    # --jobs is accepted on run/synth and produces a result identical
    # to the serial one (the determinism contract, DESIGN.md §13).
    assert cli.main(
        ["run", "grace-join", "--scale", "validation",
         "--backend", "file", "--jobs", "2", "--json"]
    ) == 0
    parallel = json.loads(capsys.readouterr().out)
    assert cli.main(
        ["run", "grace-join", "--scale", "validation",
         "--backend", "file", "--json"]
    ) == 0
    serial = json.loads(capsys.readouterr().out)
    assert parallel["derivation"] == serial["derivation"]
    assert parallel["execution"]["devices"] == serial["execution"]["devices"]


def test_exec_accepts_jobs_flag(capsys, tmp_path):
    plan_path = str(tmp_path / "plan.json")
    assert cli.main(
        ["synth", "aggregation", "--save-plan", plan_path]
    ) == 0
    capsys.readouterr()
    assert cli.main(
        ["exec", "--plan", plan_path, "--backend", "file",
         "--jobs", "2", "--json"]
    ) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["execution"]["elapsed"] > 0


def test_fuzz_faults_flag_runs_the_chaos_lane(capsys):
    assert cli.main([
        "fuzz", "--faults", "7", "--seed", "0", "--count", "3",
        "--progress-every", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos:" in out and "recovered" in out


def test_fuzz_workers_flag_runs_the_parity_lane(capsys):
    assert cli.main([
        "fuzz", "--seed", "9", "--count", "6", "--backend", "file",
        "--workers", "2", "--depth", "0", "--no-save",
        "--progress-every", "0",
    ]) == 0
    assert "parallel runs" in capsys.readouterr().out
