"""The ``repro check`` command: workload mode, plan mode, exit codes,
and the machine-readable --json shape."""

import json

import pytest

from repro import cli


def test_check_named_workloads_report_ok(capsys):
    assert cli.main(["check", "aggregation", "dup-removal"]) == 0
    out = capsys.readouterr().out
    assert "aggregation: ok" in out
    assert "dup-removal: ok" in out


def test_check_defaults_to_every_registry_workload(capsys):
    assert cli.main(["check"]) == 0
    lines = [
        line for line in capsys.readouterr().out.splitlines() if line
    ]
    assert len(lines) >= 17
    assert all(line.endswith(": ok") for line in lines)


def test_check_unknown_workload_exits_2(capsys):
    assert cli.main(["check", "tape-robot"]) == 2
    assert "tape-robot" in capsys.readouterr().err


def test_check_json_shape(capsys):
    assert cli.main(["check", "aggregation", "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["ok"] is True
    (target,) = record["targets"]
    assert target == {
        "target": "aggregation",
        "ok": True,
        "diagnostics": [],
    }


def test_check_hierarchy_requires_plan(capsys):
    assert cli.main(["check", "aggregation", "--hierarchy", "hdd-ram"]) == 2
    assert "--plan" in capsys.readouterr().err


def test_check_rejects_workloads_combined_with_plan(capsys):
    assert (
        cli.main(["check", "aggregation", "--plan", "plan.json"]) == 2
    )
    assert "not both" in capsys.readouterr().err


def test_check_unreadable_plan_exits_2(tmp_path, capsys):
    missing = str(tmp_path / "missing.json")
    assert cli.main(["check", "--plan", missing]) == 2
    assert "cannot load plan" in capsys.readouterr().err


@pytest.fixture(scope="module")
def saved_plan(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("plans") / "agg.json")
    assert cli.main(["synth", "aggregation", "--save-plan", path]) == 0
    return path


def test_check_saved_plan_is_clean(saved_plan, capsys):
    assert cli.main(["check", "--plan", saved_plan]) == 0
    assert f"{saved_plan}: ok" in capsys.readouterr().out


def test_check_plan_unknown_hierarchy_exits_2(saved_plan, capsys):
    assert (
        cli.main(["check", "--plan", saved_plan, "--hierarchy", "tape"])
        == 2
    )
    assert "unknown hierarchy preset" in capsys.readouterr().err


def test_check_plan_replayed_at_tiny_ram_fails(saved_plan, capsys):
    # The same plan, replayed on its own topology with 128 bytes of
    # RAM: the tuned blocks no longer fit, and the capacity pass says
    # where.
    assert (
        cli.main(
            [
                "check",
                "--plan",
                saved_plan,
                "--hierarchy",
                "hdd-ram",
                "--ram-size",
                "128",
                "--json",
            ]
        )
        == 1
    )
    record = json.loads(capsys.readouterr().out)
    assert record["ok"] is False
    (target,) = record["targets"]
    codes = {d["code"] for d in target["diagnostics"]}
    assert "CAP001" in codes
