"""Session behavior: synthesis, memo sharing, batching, ad-hoc specs."""

import pytest

from repro.api import Session, WorkloadError
from repro.bench.harness import Experiment
from repro.codegen.plan import PlanError
from repro.cost import atom, list_annot
from repro.hierarchy import KB, hdd_ram_hierarchy
from repro.runtime.accounting import InputSpec
from repro.symbolic import var
from repro.workloads import aggregation_spec

SMALL = ("aggregation", "set-union", "dup-removal")


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def jobs(session):
    return {name: session.synthesize(name) for name in SMALL}


class TestSynthesize:
    def test_job_carries_the_unified_record(self, jobs):
        job = jobs["aggregation"]
        assert job.workload == "aggregation"
        assert job.scale == "validation"
        assert job.derivation == ("apply-block", "seq-ac")
        assert 0 < job.opt_cost < job.spec_cost
        assert job.search.space > 0
        assert job.search.strategy == "best-first"
        assert job.plan.parameter_values  # tuned, bound
        assert job.spec is not None and job.winner is not None

    def test_lazy_execution_and_result_record(self, jobs):
        result = jobs["aggregation"].run()
        assert result.execution.backend == "sim"
        assert result.elapsed > 0
        assert result.act_over_opt == pytest.approx(1.0, rel=0.05)
        record = result.to_json()
        assert record["workload"] == "aggregation"
        assert record["search"]["space"] == jobs["aggregation"].search.space
        assert record["execution"]["devices"]["HDD"]["bytes_read"] > 0

    def test_explain_mentions_derivation_and_costs(self, jobs):
        text = jobs["aggregation"].explain()
        assert "apply-block" in text
        assert "seq-ac" in text
        assert "winner:" in text
        assert "estimated cost" in text

    def test_backend_error_path_is_plan_error(self, jobs):
        with pytest.raises(PlanError, match="'file', 'sim'"):
            jobs["aggregation"].run(backend="gpu")

    def test_synthesizer_reuse_across_same_hierarchy(self):
        session = Session()
        session.synthesize("set-union")
        session.synthesize("multiset-union")  # same hierarchy + caps
        assert len(session._synthesizers) == 1
        assert session.stats.synth_calls == 2
        assert session.stats.cache_hits > 0  # the memo amortized

    def test_strategy_override_per_job(self, session):
        job = session.synthesize("aggregation", strategy="exhaustive-bfs")
        assert job.search.strategy == "exhaustive-bfs"


class TestSynthesizeAll:
    def test_results_are_in_input_order(self, session):
        batch = session.synthesize_all(SMALL)
        assert [job.workload for job in batch] == list(SMALL)

    def test_parallel_matches_serial_deterministically(self, session):
        serial = session.synthesize_all(SMALL)
        parallel = session.synthesize_all(SMALL, parallel=2)
        for a, b in zip(serial, parallel):
            assert a.workload == b.workload
            assert a.derivation == b.derivation
            assert a.opt_cost == pytest.approx(b.opt_cost, rel=1e-12)
            assert a.plan.parameter_values == b.plan.parameter_values
            assert a.search.space == b.search.space
            assert [x.derivation for x in a.alternatives] == [
                x.derivation for x in b.alternatives
            ]

    def test_parallel_jobs_are_runnable(self, session):
        # Two workloads so the pool path actually engages (a single
        # name short-circuits to the serial branch).
        jobs = session.synthesize_all(
            ["aggregation", "set-union"], parallel=2
        )
        assert len(jobs) == 2
        for job in jobs:
            assert job.run().elapsed > 0

    def test_parallel_honors_keep_alternatives(self):
        lean = Session(keep_alternatives=0)
        jobs = lean.synthesize_all(
            ["aggregation", "set-union"], parallel=2
        )
        assert all(job.alternatives == () for job in jobs)

    def test_unknown_workload_rejected_before_any_work(self, session):
        with pytest.raises(WorkloadError, match="tape-robot"):
            session.synthesize_all(["aggregation", "tape-robot"])


class TestAdHocExperiments:
    def test_session_accepts_a_hand_built_experiment(self):
        experiment = Experiment(
            name="my-aggregation",
            spec=aggregation_spec(),
            hierarchy=hdd_ram_hierarchy(8 * KB),
            input_annots={"A": list_annot(atom(8), var("x"))},
            input_locations={"A": "HDD"},
            stats={"x": 4096.0},
            inputs={"A": InputSpec(4096, 8)},
            max_depth=3,
            max_programs=40,
        )
        session = Session()
        job = session.synthesize(experiment)
        assert job.workload == "my-aggregation"
        assert job.scale == "custom"
        assert job.run().elapsed > 0

    def test_run_convenience_synthesizes_and_executes(self):
        result = Session().run("aggregation")
        assert result.workload == "aggregation"
        assert result.elapsed > 0

    def test_naming_default_backend_keeps_configured_options(self, tmp_path):
        workdir = tmp_path / "configured"
        session = Session(
            backend="file",
            backend_options={"seed": 7, "workdir": str(workdir)},
        )
        job = session.synthesize("aggregation")
        # Explicitly naming the session's default backend must not drop
        # its configured options: the data files land in the workdir.
        result = job.run(backend="file")
        assert result.execution.backend == "file"
        assert workdir.exists() and any(workdir.iterdir())
