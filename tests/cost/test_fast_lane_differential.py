"""Differential pin: the costing fast lane is bit-identical (ISSUE 5).

``REPRO_COMPILED_COST=0`` swaps every fast-lane component (compiled
expression evaluation, the compiled tuning bundle, incremental
re-estimation) for the interpreted reference path.  This suite runs the
costing pipeline both ways over **all 17 registry workloads** and
requires *exact float equality* — estimates, constraints, tuned
parameter values, tuned costs — plus identical winners and derivations
on a full synthesis.
"""

import pytest

from repro.api import Session, default_registry
from repro.cost.cache import CostMemo
from repro.cost.estimator import CostEstimator, CostModel

REGISTRY = default_registry()
ALL_WORKLOADS = REGISTRY.names()


def _cost_spec(experiment, monkeypatch, compiled: bool, memo=None):
    """Estimate + tune one workload's spec under the chosen lane."""
    monkeypatch.setenv("REPRO_COMPILED_COST", "1" if compiled else "0")
    model = CostModel(
        hierarchy=experiment.hierarchy,
        input_annots=experiment.input_annots,
        input_locations=experiment.input_locations,
        output_location=experiment.output_location,
        stats=experiment.stats,
    )
    memo = memo if memo is not None else CostMemo()
    estimate = memo.estimate(
        experiment.spec,
        lambda: CostEstimator(model, memo=memo).estimate(experiment.spec),
    )
    tuned = memo.tune(estimate, dict(experiment.stats))
    return estimate, tuned


def test_all_17_registry_workloads_are_registered():
    assert len(ALL_WORKLOADS) == 17


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_compiled_costs_exactly_equal_interpreted(workload, monkeypatch):
    experiment = REGISTRY.experiment(workload)
    interpreted_est, interpreted = _cost_spec(
        experiment, monkeypatch, compiled=False
    )
    compiled_est, compiled = _cost_spec(
        REGISTRY.experiment(workload), monkeypatch, compiled=True
    )
    # The symbolic problem is identical …
    assert compiled_est.total == interpreted_est.total
    assert compiled_est.constraints == interpreted_est.constraints
    assert compiled_est.parameters == interpreted_est.parameters
    # … and so is the numeric tuning, to the last bit.
    assert compiled.values == interpreted.values
    assert compiled.cost == interpreted.cost
    assert compiled.feasible == interpreted.feasible
    assert compiled.evaluations == interpreted.evaluations


@pytest.mark.parametrize(
    "workload", ["bnl-join", "aggregation", "external-sort"]
)
def test_full_synthesis_identical_across_lanes(workload, monkeypatch):
    def run(flag):
        monkeypatch.setenv("REPRO_COMPILED_COST", flag)
        session = Session(strategy="best-first")
        return session.synthesize(workload, scale="validation")

    interpreted = run("0")
    compiled = run("1")
    assert compiled.winner == interpreted.winner
    assert compiled.derivation == interpreted.derivation
    assert compiled.opt_cost == interpreted.opt_cost  # exact
    assert compiled.spec_cost == interpreted.spec_cost
    assert (
        compiled.plan.parameter_values == interpreted.plan.parameter_values
    )


def test_incremental_estimation_disabled_on_interpreted_lane(monkeypatch):
    experiment = REGISTRY.experiment("bnl-join", "validation")
    model = CostModel(
        hierarchy=experiment.hierarchy,
        input_annots=experiment.input_annots,
        input_locations=experiment.input_locations,
        output_location=experiment.output_location,
        stats=experiment.stats,
    )
    memo = CostMemo()
    monkeypatch.setenv("REPRO_COMPILED_COST", "0")
    CostEstimator(model, memo=memo).estimate(experiment.spec)
    assert memo.sizes()[2] == 0  # no subtree entries on the slow lane
    monkeypatch.setenv("REPRO_COMPILED_COST", "1")
    CostEstimator(model, memo=memo).estimate(experiment.spec)
    assert memo.sizes()[2] > 0
