"""Exact reproduction of Figure 4's costing walkthrough.

The paper costs a blocked BNL join of two unary [Int] relations (Int
size 1) on an HDD+RAM hierarchy, writing the result back to the HDD, and
tabulates per-edge event counts.  The whole-program row is::

    result size          [⟨1,1⟩]x·y
    UnitTr  HDD→RAM      x + (x/k1)·y
    UnitTr  RAM→HDD      2xy
    InitCom HDD→RAM      x/k1 + xy/(k1·k2)
    InitCom RAM→HDD      2xy/ko
"""

import pytest

from repro.cost import CostEstimator, CostModel, atom, list_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.ocal.builders import empty, eq, for_, if_, sing, tup, v
from repro.symbolic import expr_key, var


def figure4_program():
    return for_(
        "xB",
        v("R"),
        for_(
            "yB",
            v("S"),
            for_(
                "x",
                v("xB"),
                for_(
                    "y",
                    v("yB"),
                    if_(
                        eq(v("x"), v("y")),
                        sing(tup(v("x"), v("y"))),
                        empty(),
                    ),
                ),
            ),
            block_in="k2",
        ),
        block_in="k1",
        block_out="ko",
    )


@pytest.fixture()
def estimate():
    x, y = var("x"), var("y")
    model = CostModel(
        hierarchy=hdd_ram_hierarchy(32 * MB),
        input_annots={
            "R": list_annot(atom(1), x),
            "S": list_annot(atom(1), y),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        output_location="HDD",
        stats={"x": 2**30, "y": 2**25},
    )
    return CostEstimator(model).estimate(figure4_program())


class TestFigure4:
    def test_result_size(self, estimate):
        x, y = var("x"), var("y")
        from repro.cost import card_of, elem_of, size_of

        assert expr_key(card_of(estimate.result.annot)) == expr_key(x * y)
        assert size_of(elem_of(estimate.result.annot)).evaluate({}) == 2

    def test_unit_hdd_to_ram(self, estimate):
        x, y, k1 = var("x"), var("y"), var("k1")
        assert expr_key(estimate.events.unit_count("HDD", "RAM")) == expr_key(
            x + x * y / k1
        )

    def test_unit_ram_to_hdd(self, estimate):
        x, y = var("x"), var("y")
        assert expr_key(estimate.events.unit_count("RAM", "HDD")) == expr_key(
            2 * x * y
        )

    def test_init_hdd_to_ram(self, estimate):
        # Figure 4's x/k1 + xy/(k1·k2) block fetches, plus one re-seek per
        # output eviction — the read/write interference of sharing one disk.
        # (Our estimator clamps fetch counts at ≥1 per pass, so compare
        # numerically in the regime where the clamp is inactive.)
        env = {
            "x": 2.0**20, "y": 2.0**15,
            "k1": 2.0**10, "k2": 2.0**8, "ko": 2.0**16,
        }
        x, y, k1, k2, ko = (env[n] for n in ("x", "y", "k1", "k2", "ko"))
        expected = x / k1 + x * y / (k1 * k2) + 2 * x * y / ko
        actual = estimate.events.init_count("HDD", "RAM").evaluate(env)
        assert actual == pytest.approx(expected)

    def test_init_ram_to_hdd(self, estimate):
        x, y, ko = var("x"), var("y"), var("ko")
        # 2xy/ko output evictions, plus the same number of read-side seeks
        # caused by read/write interference on the shared disk.
        expected = 2 * x * y / ko
        actual = estimate.events.init_count("RAM", "HDD")
        assert expr_key(actual) == expr_key(expected)

    def test_parameters_discovered(self, estimate):
        assert {"k1", "k2", "ko"} <= set(estimate.parameters)

    def test_joint_capacity_constraint(self, estimate):
        joint = [
            c for c in estimate.constraints if "together" in c.reason
        ]
        assert len(joint) == 1
        env_ok = {"k1": 2**20, "k2": 2**20, "ko": 2**20}
        env_bad = {"k1": 2**25, "k2": 2**25, "ko": 2**20}
        assert joint[0].satisfied(env_ok)
        assert not joint[0].satisfied(env_bad)

    def test_total_cost_matches_hand_computation(self, estimate):
        env = {
            "x": 2.0**20,
            "y": 2.0**15,
            "k1": 2.0**13,
            "k2": 2.0**13,
            "ko": 2.0**20,
        }
        x, y, k1, k2, ko = (env[n] for n in ("x", "y", "k1", "k2", "ko"))
        seek = 15e-3
        unit = 1 / (30 * 2**20)
        expected = (
            (x + x * y / k1) * unit
            + 2 * x * y * unit
            + (x / k1 + x * y / (k1 * k2)) * seek
            + (2 * x * y / ko) * seek          # output evictions
            + (2 * x * y / ko) * seek          # interference read seeks
        )
        assert estimate.total.evaluate(env) == pytest.approx(expected)
