"""Tests for annotated types (Section 5.1)."""

import pytest

from repro.cost import (
    AnnotError,
    ConstSize,
    ListAnnot,
    annot_add,
    annot_linear_growth,
    annot_max,
    annot_min_card,
    annot_scale_card,
    atom,
    card_of,
    elem_of,
    list_annot,
    size_of,
    tuple_annot,
)
from repro.symbolic import Const, expr_key, simplify, var


class TestAccessors:
    def test_size_of_atom(self):
        assert size_of(atom(4)) == Const(4)

    def test_size_of_list(self):
        a = list_annot(atom(2), var("x"))
        assert expr_key(size_of(a)) == expr_key(2 * var("x"))

    def test_size_of_tuple(self):
        a = tuple_annot(atom(1), list_annot(atom(1), var("x")))
        assert expr_key(size_of(a)) == expr_key(var("x") + 1)

    def test_paper_example_annotation(self):
        # ⟨[[1]y]x, [⟨1,1⟩]z⟩ has size x·y + 2z
        a = tuple_annot(
            list_annot(list_annot(atom(1), var("y")), var("x")),
            list_annot(tuple_annot(atom(1), atom(1)), var("z")),
        )
        assert expr_key(size_of(a)) == expr_key(
            var("x") * var("y") + 2 * var("z")
        )

    def test_card_and_elem(self):
        a = list_annot(atom(1), var("x"))
        assert card_of(a) == var("x")
        assert elem_of(a) == atom(1)

    def test_card_of_non_list_raises(self):
        with pytest.raises(AnnotError):
            card_of(atom(1))

    def test_elem_of_non_list_raises(self):
        with pytest.raises(AnnotError):
            elem_of(tuple_annot(atom(1)))


class TestMax:
    def test_branch_with_empty_list(self):
        # if c then [⟨x,y⟩] else []  →  [⟨1,1⟩]1 (Figure 4, rows 5–7)
        then = list_annot(tuple_annot(atom(1), atom(1)), 1)
        orelse = list_annot(atom(0), 0)
        worst = annot_max(then, orelse)
        assert isinstance(worst, ListAnnot)
        assert card_of(worst) == Const(1)
        assert size_of(elem_of(worst)) == Const(2)

    def test_symmetric_empty(self):
        then = list_annot(atom(0), 0)
        orelse = list_annot(atom(1), var("x"))
        worst = annot_max(then, orelse)
        assert expr_key(card_of(worst)) == expr_key(var("x"))

    def test_cardinalities_take_max(self):
        a = list_annot(atom(1), var("x"))
        b = list_annot(atom(1), var("y"))
        worst = annot_max(a, b)
        assert "max" in str(card_of(worst))

    def test_tuples_pointwise(self):
        a = tuple_annot(atom(1), atom(4))
        b = tuple_annot(atom(2), atom(3))
        worst = annot_max(a, b)
        assert size_of(worst) == Const(6)

    def test_structural_mismatch_degrades_to_size(self):
        a = list_annot(atom(1), var("x"))
        b = tuple_annot(atom(1), atom(1))
        worst = annot_max(a, b)
        assert isinstance(worst, ConstSize)


class TestAddScale:
    def test_concat_adds_cardinalities(self):
        a = list_annot(atom(1), var("x"))
        b = list_annot(atom(1), var("y"))
        combined = annot_add(a, b)
        assert expr_key(card_of(combined)) == expr_key(var("x") + var("y"))

    def test_concat_with_empty_is_identity(self):
        a = list_annot(atom(1), var("x"))
        empty = list_annot(atom(0), 0)
        assert annot_add(a, empty) == a
        assert annot_add(empty, a) == a

    def test_concat_of_non_lists_raises(self):
        with pytest.raises(AnnotError):
            annot_add(atom(1), atom(1))

    def test_scale_multiplies_card(self):
        a = list_annot(atom(2), var("k"))
        scaled = annot_scale_card(a, var("n"))
        assert expr_key(card_of(scaled)) == expr_key(var("n") * var("k"))

    def test_min_card_keeps_smaller(self):
        a = list_annot(atom(1), var("x"))
        b = list_annot(atom(1), var("y"))
        shorter = annot_min_card(a, b)
        assert "min" in str(card_of(shorter))


class TestLinearGrowth:
    def test_list_grows_by_one_per_iteration(self):
        # foldL([], λ⟨a,x⟩. a ⊔ [x]): step result has card 1 given acc [].
        init = list_annot(atom(1), 0)
        step = list_annot(atom(1), 1)
        final = annot_linear_growth(init, step, var("n"))
        assert expr_key(card_of(final)) == expr_key(var("n"))

    def test_counter_grows_in_bytes(self):
        init = atom(1)
        step = atom(1)
        final = annot_linear_growth(init, step, var("n"))
        assert size_of(final) == Const(1)

    def test_tuple_growth_pointwise(self):
        init = tuple_annot(list_annot(atom(1), 0), atom(1))
        step = tuple_annot(list_annot(atom(1), 2), atom(1))
        final = annot_linear_growth(init, step, var("n"))
        assert expr_key(size_of(final)) == expr_key(2 * var("n") + 1)

    def test_mismatched_shapes_degrade_to_bytes(self):
        init = list_annot(atom(1), 0)
        step = tuple_annot(atom(1), atom(1))
        final = annot_linear_growth(init, step, var("n"))
        assert isinstance(final, ConstSize)

    def test_rendering(self):
        a = list_annot(tuple_annot(atom(1), atom(1)), var("x"))
        assert str(a) == "[⟨1, 1⟩]{x}"
