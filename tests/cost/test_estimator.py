"""Estimator behavior across constructs: naive costs, spilling, GRACE,
order-inputs, seq-ac, flash writes, cache hierarchies."""

import pytest

from repro.cost import (
    CostEstimator,
    CostModel,
    EstimatorError,
    atom,
    card_of,
    list_annot,
    size_of,
    tuple_annot,
)
from repro.hierarchy import (
    GB,
    KB,
    MB,
    hdd_flash_hierarchy,
    hdd_ram_cache_hierarchy,
    hdd_ram_hierarchy,
    two_hdd_hierarchy,
)
from repro.ocal.builders import (
    app,
    empty,
    eq,
    flat_map,
    fold_l,
    for_,
    hash_partition,
    head,
    if_,
    lam,
    length,
    lit,
    proj,
    sing,
    tup,
    unfold_r,
    v,
    zip_,
)
from repro.symbolic import expr_key, var

X, Y = var("x"), var("y")


def join_model(hierarchy, output=None, stats=None):
    return CostModel(
        hierarchy=hierarchy,
        input_annots={
            "R": list_annot(tuple_annot(atom(1), atom(1)), X),
            "S": list_annot(tuple_annot(atom(1), atom(1)), Y),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        output_location=output,
        stats=stats or {"x": 2**28, "y": 2**23},
    )


def naive_join():
    return for_(
        "a",
        v("R"),
        for_(
            "b",
            v("S"),
            if_(
                eq(proj(v("a"), 1), proj(v("b"), 1)),
                sing(tup(v("a"), v("b"))),
                empty(),
            ),
        ),
    )


class TestNaiveCosts:
    def test_one_seek_per_tuple(self):
        est = CostEstimator(join_model(hdd_ram_hierarchy(32 * MB))).estimate(
            naive_join()
        )
        # R fetched element-wise once; S fetched element-wise per R tuple.
        assert expr_key(est.events.init_count("HDD", "RAM")) == expr_key(
            X + X * Y
        )

    def test_no_write_events_when_cpu_consumes(self):
        est = CostEstimator(join_model(hdd_ram_hierarchy(32 * MB))).estimate(
            naive_join()
        )
        assert est.events.unit_count("RAM", "HDD").evaluate({}) == 0

    def test_unbound_variable_rejected(self):
        model = join_model(hdd_ram_hierarchy(32 * MB))
        with pytest.raises(EstimatorError):
            CostEstimator(model).estimate(v("missing"))

    def test_for_over_non_list_rejected(self):
        model = join_model(hdd_ram_hierarchy(32 * MB))
        with pytest.raises(EstimatorError):
            CostEstimator(model).estimate(for_("a", lit(1), sing(v("a"))))


class TestBlocking:
    def blocked_join(self, seq=None):
        return for_(
            "xB",
            v("R"),
            for_(
                "yB",
                v("S"),
                for_(
                    "a",
                    v("xB"),
                    for_(
                        "b",
                        v("yB"),
                        if_(
                            eq(proj(v("a"), 1), proj(v("b"), 1)),
                            sing(tup(v("a"), v("b"))),
                            empty(),
                        ),
                    ),
                ),
                block_in="k2",
                seq=seq,
            ),
            block_in="k1",
        )

    def test_blocking_reduces_seeks(self):
        model = join_model(hdd_ram_hierarchy(32 * MB))
        naive = CostEstimator(model).estimate(naive_join())
        blocked = CostEstimator(model).estimate(self.blocked_join())
        env = {"x": 1e6, "y": 1e4, "k1": 1e5, "k2": 1e4}
        assert blocked.events.init_count("HDD", "RAM").evaluate(env) < (
            naive.events.init_count("HDD", "RAM").evaluate(env) / 1e3
        )

    def test_blocking_reduces_passes_over_inner_relation(self):
        # The naive join transfers S once per R *tuple*; the blocked join
        # once per R *block* — x/k1 passes instead of x.
        model = join_model(hdd_ram_hierarchy(32 * MB))
        naive = CostEstimator(model).estimate(naive_join())
        blocked = CostEstimator(model).estimate(self.blocked_join())
        env = {"x": 1e6, "y": 1e4, "k1": 1e5, "k2": 1e4}
        naive_bytes = naive.events.unit_count("HDD", "RAM").evaluate(env)
        blocked_bytes = blocked.events.unit_count("HDD", "RAM").evaluate(env)
        assert naive_bytes == pytest.approx(2 * (1e6 + 1e6 * 1e4))
        assert blocked_bytes == pytest.approx(2 * (1e6 + 1e6 / 1e5 * 1e4))

    def test_single_scan_bytes_unchanged_by_blocking(self):
        model = join_model(hdd_ram_hierarchy(32 * MB))
        scan = for_("a", v("R"), sing(proj(v("a"), 1)))
        blocked_scan = for_(
            "xB",
            v("R"),
            for_("a", v("xB"), sing(proj(v("a"), 1))),
            block_in="k1",
        )
        env = {"x": 1e6, "k1": 1e4}
        plain = CostEstimator(model).estimate(scan)
        blocked = CostEstimator(model).estimate(blocked_scan)
        assert blocked.events.unit_count("HDD", "RAM").evaluate(
            env
        ) == pytest.approx(
            plain.events.unit_count("HDD", "RAM").evaluate(env)
        )

    def test_seq_annotation_one_seek_per_pass(self):
        model = join_model(hdd_ram_hierarchy(32 * MB))
        plain = CostEstimator(model).estimate(self.blocked_join())
        seq = CostEstimator(model).estimate(
            self.blocked_join(seq=("HDD", "RAM"))
        )
        env = {"x": 1e6, "y": 1e4, "k1": 1e3, "k2": 1e2}
        # Without maxSeq limits the whole S pass costs a single seek.
        plain_inits = plain.events.init_count("HDD", "RAM").evaluate(env)
        seq_inits = seq.events.init_count("HDD", "RAM").evaluate(env)
        expected = env["x"] / env["k1"] * (1 + env["y"] / env["k2"])
        assert plain_inits == pytest.approx(expected)
        assert seq_inits == pytest.approx(
            env["x"] / env["k1"] * 2  # one block seek + one seq pass
        )


class TestWriteOut:
    def test_same_disk_interference(self):
        model_same = join_model(hdd_ram_hierarchy(32 * MB), output="HDD")
        model_none = join_model(hdd_ram_hierarchy(32 * MB))
        est_same = CostEstimator(model_same).estimate(naive_join())
        est_none = CostEstimator(model_none).estimate(naive_join())
        env = {"x": 1e5, "y": 1e4}
        assert est_same.total.evaluate(env) > est_none.total.evaluate(env)
        # Interference seeks: reads re-seek once per output eviction.
        extra = est_same.events.init_count(
            "HDD", "RAM"
        ).evaluate(env) - est_none.events.init_count("HDD", "RAM").evaluate(env)
        assert extra > 0

    def test_two_disks_avoid_interference(self):
        model = CostModel(
            hierarchy=two_hdd_hierarchy(32 * MB),
            input_annots={
                "R": list_annot(tuple_annot(atom(1), atom(1)), X),
                "S": list_annot(tuple_annot(atom(1), atom(1)), Y),
            },
            input_locations={"R": "HDD", "S": "HDD"},
            output_location="HDD2",
            stats={"x": 2**20, "y": 2**18},
        )
        est = CostEstimator(model).estimate(naive_join())
        env = {"x": 1e5, "y": 1e4}
        # No interference term on the input disk.
        assert est.events.init_count("HDD", "RAM").evaluate(
            env
        ) == pytest.approx(env["x"] + env["x"] * env["y"])
        assert est.events.unit_count("RAM", "HDD2").evaluate(env) > 0

    def test_flash_write_erases_per_erase_block(self):
        model = CostModel(
            hierarchy=hdd_flash_hierarchy(32 * MB),
            input_annots={
                "R": list_annot(tuple_annot(atom(1), atom(1)), X),
                "S": list_annot(tuple_annot(atom(1), atom(1)), Y),
            },
            input_locations={"R": "HDD", "S": "HDD"},
            output_location="SSD",
            stats={"x": 2**20, "y": 2**18},
        )
        program = for_(
            "xB", v("R"), for_("b", v("S"), sing(tup(v("xB"), v("b")))),
            block_in="k1", block_out="ko",
        )
        est = CostEstimator(model).estimate(program)
        env = {"x": 2.0**20, "y": 2.0**10, "k1": 2.0**10, "ko": 2.0**25}
        inits = est.events.init_count("RAM", "SSD").evaluate(env)
        total_bytes = est.events.unit_count("RAM", "SSD").evaluate(env)
        # However large the buffer, one erase per 256K written.
        assert inits == pytest.approx(total_bytes / (256 * KB))


class TestSpilling:
    def test_small_intermediate_stays_in_ram(self):
        model = join_model(
            hdd_ram_hierarchy(32 * MB), stats={"x": 1e3, "y": 1e2}
        )
        program = app(
            lam("small", for_("a", v("small"), sing(v("a")))),
            for_("a", v("R"), sing(proj(v("a"), 1))),
        )
        est = CostEstimator(model).estimate(program)
        # Only the initial read of R; no spill traffic back to disk.
        assert est.events.unit_count("RAM", "HDD").evaluate({"x": 1e3}) == 0

    def test_large_intermediate_spills(self):
        model = join_model(
            hdd_ram_hierarchy(1 * MB), stats={"x": 1e8, "y": 1e2}
        )
        program = app(
            lam("big", app(length(), v("big"))),
            for_("a", v("R"), sing(proj(v("a"), 1))),
        )
        est = CostEstimator(model).estimate(program)
        env = {"x": 1e8, "bout1": 1e6}
        assert est.events.unit_count("RAM", "HDD").evaluate(env) == (
            pytest.approx(1e8)
        )


class TestGraceHashJoin:
    def grace(self, blocked=False):
        def body(r, s):
            if not blocked:
                return for_(
                    "a",
                    r,
                    for_(
                        "b",
                        s,
                        if_(
                            eq(proj(v("a"), 1), proj(v("b"), 1)),
                            sing(tup(v("a"), v("b"))),
                            empty(),
                        ),
                    ),
                )
            return for_(
                "aB",
                r,
                for_(
                    "bB",
                    s,
                    for_(
                        "a",
                        v("aB"),
                        for_(
                            "b",
                            v("bB"),
                            if_(
                                eq(proj(v("a"), 1), proj(v("b"), 1)),
                                sing(tup(v("a"), v("b"))),
                                empty(),
                            ),
                        ),
                    ),
                    block_in="kb2",
                ),
                block_in="kb1",
            )

        return app(
            lam(
                ("Rp", "Sp"),
                app(
                    flat_map(
                        lam("p", body(proj(v("p"), 1), proj(v("p"), 2)))
                    ),
                    app(
                        zip_(),
                        tup(
                            app(hash_partition("s", 1), v("Rp")),
                            app(hash_partition("s", 1), v("Sp")),
                        ),
                    ),
                ),
            ),
            tup(v("R"), v("S")),
        )

    def test_partitions_spill_and_data_read_twice(self):
        # Bucket-blocked GRACE with whole-bucket blocks: every byte is read
        # exactly twice (once to partition, once to join) and written once.
        model = join_model(
            hdd_ram_hierarchy(8 * MB), stats={"x": 2**28, "y": 2**26}
        )
        est = CostEstimator(model).estimate(self.grace(blocked=True))
        env = {
            "x": 2.0**28,
            "y": 2.0**26,
            "s": 256.0,
            "kb1": 2.0**20,  # = x/s: one block covers a whole R bucket
            "kb2": 2.0**18,  # = y/s
            "bout1": 2.0**20,
            "bout2": 2.0**20,
        }
        reads = est.events.unit_count("HDD", "RAM").evaluate(env)
        writes = est.events.unit_count("RAM", "HDD").evaluate(env)
        total_input = 2 * (2**28 + 2**26)  # 2 bytes per tuple
        assert reads == pytest.approx(2 * total_input, rel=0.01)
        assert writes == pytest.approx(total_input, rel=0.01)

    def test_bucket_count_is_a_parameter(self):
        model = join_model(hdd_ram_hierarchy(8 * MB))
        est = CostEstimator(model).estimate(self.grace())
        assert "s" in est.parameters

    def test_grace_beats_blocked_bnl_when_inner_exceeds_ram(self):
        # Table 1's setup: S far larger than the buffer pool, so BNL makes
        # many passes over S while GRACE reads everything twice.
        stats = {"x": 2**28, "y": 2**26}
        model = join_model(hdd_ram_hierarchy(8 * MB), stats=stats)
        grace_est = CostEstimator(model).estimate(self.grace(blocked=True))
        bnl = TestBlocking().blocked_join(seq=("HDD", "RAM"))
        bnl_est = CostEstimator(model).estimate(bnl)
        grace_cost = grace_est.total.evaluate(
            {
                "x": 2.0**28, "y": 2.0**26, "s": 256.0,
                "kb1": 2.0**20, "kb2": 2.0**18,
                "bout1": 2.0**20, "bout2": 2.0**20,
            }
        )
        bnl_cost = bnl_est.total.evaluate(
            {"x": 2.0**28, "y": 2.0**26, "k1": 2.0**21, "k2": 2.0**21}
        )
        assert grace_cost < bnl_cost


class TestCacheHierarchy:
    def test_untiled_inner_loops_pay_per_element_cache_inits(self):
        hierarchy = hdd_ram_cache_hierarchy(32 * MB)
        model = CostModel(
            hierarchy=hierarchy,
            input_annots={"R": list_annot(atom(1), X)},
            input_locations={"R": "HDD"},
            stats={"x": 2**20},
        )
        blocked = for_(
            "xB", v("R"), for_("a", v("xB"), sing(v("a"))), block_in="k1"
        )
        tiled = for_(
            "xB",
            v("R"),
            for_(
                "xC",
                v("xB"),
                for_("a", v("xC"), sing(v("a"))),
                block_in="kc",
            ),
            block_in="k1",
        )
        est_blocked = CostEstimator(model).estimate(blocked)
        est_tiled = CostEstimator(model).estimate(tiled)
        env = {"x": 2.0**20, "k1": 2.0**15, "kc": 2.0**9}
        untiled_inits = est_blocked.events.init_count("RAM", "Cache").evaluate(env)
        tiled_inits = est_tiled.events.init_count("RAM", "Cache").evaluate(env)
        assert untiled_inits == pytest.approx(2.0**20)   # per element
        assert tiled_inits == pytest.approx(2.0**20 / 2**9)  # per tile

    def test_hdd_fetch_goes_through_ram(self):
        hierarchy = hdd_ram_cache_hierarchy(32 * MB)
        model = CostModel(
            hierarchy=hierarchy,
            input_annots={"R": list_annot(atom(1), X)},
            input_locations={"R": "HDD"},
            stats={"x": 2**20},
        )
        blocked = for_(
            "xB", v("R"), for_("a", v("xB"), sing(v("a"))), block_in="k1"
        )
        est = CostEstimator(model).estimate(blocked)
        env = {"x": 2.0**20, "k1": 2.0**10}
        assert est.events.unit_count("HDD", "RAM").evaluate(env) == (
            pytest.approx(2.0**20)
        )


class TestOrderInputs:
    def test_min_max_annotation(self):
        model = join_model(hdd_ram_hierarchy(32 * MB))
        ordered = app(
            lam(("R1", "S1"), naive_join_over("R1", "S1")),
            if_(
                Prim_le_length("R", "S"),
                tup(v("R"), v("S")),
                tup(v("S"), v("R")),
            ),
        )
        est = CostEstimator(model).estimate(ordered)
        # Outer loop runs min(x, y) times: the dominant init term is
        # min(x,y)·max(x,y) = x·y either way, but the linear term is min.
        env_small_r = {"x": 1e3, "y": 1e6}
        env_small_s = {"x": 1e6, "y": 1e3}
        inits = est.events.init_count("HDD", "RAM")
        assert inits.evaluate(env_small_r) == pytest.approx(
            1e3 + 1e3 * 1e6
        )
        assert inits.evaluate(env_small_s) == pytest.approx(
            1e3 + 1e3 * 1e6
        )


def naive_join_over(r, s):
    return for_(
        "a",
        v(r),
        for_(
            "b",
            v(s),
            if_(
                eq(proj(v("a"), 1), proj(v("b"), 1)),
                sing(tup(v("a"), v("b"))),
                empty(),
            ),
        ),
    )


def Prim_le_length(a, b):
    from repro.ocal.builders import le

    return le(app(length(), v(a)), app(length(), v(b)))


class TestFoldCosts:
    def test_aggregation_reads_once(self):
        model = CostModel(
            hierarchy=hdd_ram_hierarchy(32 * MB),
            input_annots={"R": list_annot(atom(1), X)},
            input_locations={"R": "HDD"},
            stats={"x": 2**30},
        )
        from repro.ocal.builders import add

        agg = app(
            fold_l(lit(0), lam(("acc", "e"), add(v("acc"), v("e"))),
                   block_in="k1"),
            v("R"),
        )
        est = CostEstimator(model).estimate(agg)
        env = {"x": 2.0**30, "k1": 2.0**20}
        assert est.events.unit_count("HDD", "RAM").evaluate(env) == (
            pytest.approx(2.0**30)
        )
        assert est.events.init_count("HDD", "RAM").evaluate(env) == (
            pytest.approx(2.0**10)
        )

    def test_small_accumulator_not_spilled(self):
        model = CostModel(
            hierarchy=hdd_ram_hierarchy(32 * MB),
            input_annots={"R": list_annot(atom(1), X)},
            input_locations={"R": "HDD"},
            stats={"x": 2**20},
        )
        from repro.ocal.builders import add

        agg = app(
            fold_l(lit(0), lam(("acc", "e"), add(v("acc"), v("e")))), v("R")
        )
        est = CostEstimator(model).estimate(agg)
        assert est.events.unit_count("RAM", "HDD").evaluate({"x": 1e6}) == 0
