"""Tests for transfer-event bookkeeping and constraints."""

import pytest

from repro.cost import Constraint, CostEvents
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.symbolic import Const, expr_key, var


class TestCostEvents:
    def test_counts_accumulate(self):
        events = CostEvents()
        events.add_init("HDD", "RAM", var("x"))
        events.add_init("HDD", "RAM", 5)
        assert expr_key(events.init_count("HDD", "RAM")) == expr_key(
            var("x") + 5
        )

    def test_directions_are_distinct(self):
        events = CostEvents()
        events.add_unit("HDD", "RAM", 10)
        assert events.unit_count("RAM", "HDD") == Const(0)

    def test_merge(self):
        a = CostEvents()
        a.add_unit("HDD", "RAM", var("x"))
        b = CostEvents()
        b.add_unit("HDD", "RAM", var("y"))
        b.add_init("RAM", "HDD", 1)
        a.merge(b)
        assert expr_key(a.unit_count("HDD", "RAM")) == expr_key(
            var("x") + var("y")
        )
        assert a.init_count("RAM", "HDD") == Const(1)

    def test_merge_scaled_multiplies(self):
        inner = CostEvents()
        inner.add_init("HDD", "RAM", var("y"))
        outer = CostEvents()
        outer.merge_scaled(inner, var("n"))
        assert expr_key(outer.init_count("HDD", "RAM")) == expr_key(
            var("n") * var("y")
        )

    def test_total_cost_uses_edge_weights(self):
        h = hdd_ram_hierarchy(32 * MB)
        events = CostEvents()
        events.add_init("HDD", "RAM", 100)        # 100 seeks à 15 ms
        events.add_unit("HDD", "RAM", 30 * MB)    # 1 second of transfer
        total = events.total_cost(h)
        assert total.evaluate({}) == pytest.approx(100 * 15e-3 + 1.0)

    def test_total_cost_is_symbolic(self):
        h = hdd_ram_hierarchy(32 * MB)
        events = CostEvents()
        events.add_init("HDD", "RAM", var("x"))
        total = events.total_cost(h)
        assert total.evaluate({"x": 2}) == pytest.approx(2 * 15e-3)

    def test_evaluated_report(self):
        events = CostEvents()
        events.add_init("HDD", "RAM", var("x"))
        report = events.evaluated({"x": 7})
        assert report["init"][("HDD", "RAM")] == 7.0


class TestConstraint:
    def test_satisfied(self):
        c = Constraint(var("k"), Const(10))
        assert c.satisfied({"k": 10})
        assert not c.satisfied({"k": 11})

    def test_tolerance(self):
        c = Constraint(var("k"), Const(10))
        assert c.satisfied({"k": 10.0000000001})
