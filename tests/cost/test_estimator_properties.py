"""Property-based tests on cost-estimator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    CostEstimator,
    CostModel,
    atom,
    list_annot,
    size_of,
    tuple_annot,
)
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.ocal.builders import (
    empty,
    eq,
    for_,
    if_,
    proj,
    sing,
    tup,
    v,
)
from repro.symbolic import var


def blocked_join(k1="k1", k2="k2"):
    return for_(
        "xB",
        v("R"),
        for_(
            "yB",
            v("S"),
            for_(
                "a",
                v("xB"),
                for_(
                    "b",
                    v("yB"),
                    if_(
                        eq(proj(v("a"), 1), proj(v("b"), 1)),
                        sing(tup(v("a"), v("b"))),
                        empty(),
                    ),
                ),
            ),
            block_in=k2,
        ),
        block_in=k1,
    )


def make_model(ram_mb=8, output=None):
    return CostModel(
        hierarchy=hdd_ram_hierarchy(ram_mb * MB),
        input_annots={
            "R": list_annot(tuple_annot(atom(1), atom(1)), var("x")),
            "S": list_annot(tuple_annot(atom(1), atom(1)), var("y")),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        output_location=output,
        stats={"x": 2.0**26, "y": 2.0**22},
    )


ESTIMATE = CostEstimator(make_model()).estimate(blocked_join())
ESTIMATE_OUT = CostEstimator(make_model(output="HDD")).estimate(blocked_join())


class TestCostInvariants:
    @given(
        x=st.floats(1e3, 1e9),
        y=st.floats(1e3, 1e9),
        k1=st.floats(1, 1e6),
        k2=st.floats(1, 1e6),
    )
    @settings(max_examples=150, deadline=None)
    def test_cost_is_nonnegative(self, x, y, k1, k2):
        env = {"x": x, "y": y, "k1": k1, "k2": k2}
        assert ESTIMATE.total.evaluate(env) >= 0

    @given(
        x=st.floats(1e4, 1e8),
        y=st.floats(1e4, 1e8),
        k=st.floats(1, 1e5),
        factor=st.floats(1.1, 16),
    )
    @settings(max_examples=150, deadline=None)
    def test_bigger_blocks_never_cost_more(self, x, y, k, factor):
        base = {"x": x, "y": y, "k1": k, "k2": k}
        bigger = {"x": x, "y": y, "k1": k * factor, "k2": k * factor}
        assert ESTIMATE.total.evaluate(bigger) <= (
            ESTIMATE.total.evaluate(base) * 1.0001
        )

    @given(
        x=st.floats(1e4, 1e8),
        factor=st.floats(1.1, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_cost_monotone_in_input_size(self, x, factor):
        env = {"x": x, "y": 1e5, "k1": 1e3, "k2": 1e3}
        grown = dict(env, x=x * factor)
        assert ESTIMATE.total.evaluate(grown) >= ESTIMATE.total.evaluate(env)

    @given(
        x=st.floats(1e4, 1e7),
        y=st.floats(1e4, 1e7),
        k=st.floats(2, 1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_writeout_only_adds_cost(self, x, y, k):
        env = {"x": x, "y": y, "k1": k, "k2": k, "ko": 1e5}
        no_out = ESTIMATE.total.evaluate({k_: v_ for k_, v_ in env.items()
                                          if k_ != "ko"})
        with_out = ESTIMATE_OUT.total.evaluate(env)
        assert with_out >= no_out

    def test_result_size_independent_of_blocks(self):
        env1 = {"x": 1e6, "y": 1e4, "k1": 10.0, "k2": 10.0}
        env2 = {"x": 1e6, "y": 1e4, "k1": 999.0, "k2": 7.0}
        size = size_of(ESTIMATE.result.annot)
        assert size.evaluate(env1) == size.evaluate(env2)

    def test_constraints_reference_known_symbols(self):
        known = {"x", "y", "k1", "k2", "ko"}
        for constraint in ESTIMATE_OUT.constraints:
            symbols = constraint.lhs.free_vars() | constraint.rhs.free_vars()
            assert symbols <= known
