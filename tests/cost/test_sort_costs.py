"""Section 7.2's sorting cost formulas, derived automatically.

* Naive insertion sort ``foldL([], unfoldR(mrg))`` over x singleton lists
  stored on HDD costs Θ(x²) transferred units and write seeks — the
  closed form ``x·InitCom + x(x+1)/2·(UnitTr_r + UnitTr_w + InitCom_w)``.
* 2^k-way External Merge-Sort ``treeFold[2^k]([], unfoldR(funcPow[k](mrg)))``
  costs ``⌈⌈log x⌉/k⌉·x`` units each way with ``/bin`` and ``/bout``
  initiation counts.
"""

import math

import pytest

from repro.cost import CostEstimator, CostModel, atom, list_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.ocal.builders import app, empty, fold_l, func_pow, mrg, tree_fold, unfold_r, v
from repro.symbolic import expr_key, var


def make_model(ram=32 * MB, runs=1e9):
    x = var("x")
    return CostModel(
        hierarchy=hdd_ram_hierarchy(ram),
        input_annots={"Rs": list_annot(list_annot(atom(1), 1), x)},
        input_locations={"Rs": "HDD"},
        output_location="HDD",
        stats={"x": runs},
    )


class TestInsertionSort:
    @pytest.fixture()
    def estimate(self):
        program = app(fold_l(empty(), unfold_r(mrg())), v("Rs"))
        return CostEstimator(make_model()).estimate(program)

    def test_quadratic_transfer_units(self, estimate):
        x = var("x")
        expected = x * (x + 1) / 2
        assert expr_key(estimate.events.unit_count("HDD", "RAM")) == expr_key(
            expected
        )
        assert expr_key(estimate.events.unit_count("RAM", "HDD")) == expr_key(
            expected
        )

    def test_quadratic_write_seeks(self, estimate):
        x = var("x")
        assert expr_key(estimate.events.init_count("RAM", "HDD")) == expr_key(
            x * (x + 1) / 2
        )

    def test_linear_read_seeks(self, estimate):
        # x seeks for the input elements + x to find the accumulator.
        x = var("x")
        assert expr_key(estimate.events.init_count("HDD", "RAM")) == expr_key(
            2 * x
        )

    def test_result_is_materialized_on_disk(self, estimate):
        assert estimate.result.loc == "HDD"

    def test_numeric_blowup(self, estimate):
        small = estimate.total.evaluate({"x": 1e3})
        large = estimate.total.evaluate({"x": 1e4})
        # Quadratic: 10x the input, ~100x the cost.
        assert large / small == pytest.approx(100, rel=0.1)


class TestExternalMergeSort:
    def make_program(self, k):
        return app(
            tree_fold(
                2**k,
                empty(),
                unfold_r(func_pow(k, mrg()), block_in="kb", block_out="ko"),
            ),
            v("Rs"),
        )

    def test_levels_times_data_each_way(self):
        estimate = CostEstimator(make_model()).estimate(self.make_program(2))
        env = {"x": 2.0**20, "kb": 1.0, "ko": 1.0}
        levels = math.ceil(20 / 2)
        assert estimate.events.unit_count("HDD", "RAM").evaluate(
            env
        ) == pytest.approx(levels * 2**20)
        assert estimate.events.unit_count("RAM", "HDD").evaluate(
            env
        ) == pytest.approx(levels * 2**20)

    def test_inits_scale_with_buffer_sizes(self):
        estimate = CostEstimator(make_model()).estimate(self.make_program(2))
        env = {"x": 2.0**20, "kb": 2.0**10, "ko": 2.0**12}
        levels = math.ceil(20 / 2)
        assert estimate.events.init_count("HDD", "RAM").evaluate(
            env
        ) == pytest.approx(levels * 2**20 / 2**10)
        assert estimate.events.init_count("RAM", "HDD").evaluate(
            env
        ) == pytest.approx(levels * 2**20 / 2**12)

    def test_higher_fan_in_means_fewer_levels(self):
        model = make_model()
        est2 = CostEstimator(model).estimate(self.make_program(1))
        est16 = CostEstimator(model).estimate(self.make_program(4))
        env = {"x": 2.0**20, "kb": 2.0**10, "ko": 2.0**10}
        assert est16.events.unit_count("HDD", "RAM").evaluate(env) < (
            est2.events.unit_count("HDD", "RAM").evaluate(env)
        )

    def test_fan_in_buffer_tradeoff_constraint(self):
        # 2^k input buffers plus the output buffer must share the root.
        estimate = CostEstimator(make_model()).estimate(self.make_program(3))
        joint = [c for c in estimate.constraints if "together" in c.reason]
        assert joint, "expected a joint capacity constraint"
        assert not joint[0].satisfied({"kb": 32 * MB, "ko": 32 * MB})

    def test_sort_beats_insertion_sort_at_scale(self):
        model = make_model()
        naive = app(fold_l(empty(), unfold_r(mrg())), v("Rs"))
        naive_cost = CostEstimator(model).estimate(naive).total.evaluate(
            {"x": 1e6}
        )
        sort_cost = CostEstimator(model).estimate(
            self.make_program(3)
        ).total.evaluate({"x": 1e6, "kb": 2**18, "ko": 2**20})
        assert sort_cost < naive_cost / 1e3

    def test_output_not_double_charged(self):
        # The sorted result is already materialized on the HDD by the last
        # merge level; the top-level write-out must not charge it again.
        estimate = CostEstimator(make_model()).estimate(self.make_program(2))
        env = {"x": 2.0**20, "kb": 1.0, "ko": 1.0}
        levels = math.ceil(20 / 2)
        assert estimate.events.unit_count("RAM", "HDD").evaluate(
            env
        ) == pytest.approx(levels * 2**20)
