"""Tests for the cost memoization cache (estimates + tunings)."""

import pytest

from repro.cost import (
    CacheStats,
    CostEstimator,
    CostModel,
    CostMemo,
    EstimatorError,
    atom,
    list_annot,
    tuple_annot,
)
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.search import Synthesizer
from repro.symbolic import var
from repro.workloads import naive_join_spec

JOIN_ANNOTS = {
    "R": list_annot(tuple_annot(atom(1), atom(1)), var("x")),
    "S": list_annot(tuple_annot(atom(1), atom(1)), var("y")),
}
JOIN_STATS = {"x": 2.0**20, "y": 2.0**16}


def join_model():
    return CostModel(
        hierarchy=hdd_ram_hierarchy(8 * MB),
        input_annots=JOIN_ANNOTS,
        input_locations={"R": "HDD", "S": "HDD"},
        stats=JOIN_STATS,
    )


class TestCacheStats:
    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = CacheStats(estimate_hits=3, estimate_misses=1, tune_hits=2,
                           tune_misses=2)
        assert stats.hits == 5
        assert stats.lookups == 8
        assert stats.hit_rate == pytest.approx(5 / 8)

    def test_since_snapshot(self):
        stats = CacheStats(estimate_hits=2, tune_misses=1)
        before = stats.snapshot()
        stats.estimate_hits += 3
        stats.tune_hits += 1
        delta = stats.since(before)
        assert delta.estimate_hits == 3
        assert delta.tune_hits == 1
        assert delta.tune_misses == 0


class TestEstimateMemo:
    def test_estimate_computed_once(self):
        memo = CostMemo()
        model = join_model()
        program = naive_join_spec()
        calls = []

        def compute():
            calls.append(1)
            return CostEstimator(model).estimate(program)

        first = memo.estimate(program, compute)
        second = memo.estimate(program, compute)
        assert first is second
        assert len(calls) == 1
        assert memo.stats.estimate_misses == 1
        assert memo.stats.estimate_hits == 1

    def test_failures_are_memoized(self):
        memo = CostMemo()
        calls = []

        def compute():
            calls.append(1)
            raise EstimatorError("nope")

        program = naive_join_spec()
        with pytest.raises(EstimatorError):
            memo.estimate(program, compute)
        with pytest.raises(EstimatorError):
            memo.estimate(program, compute)
        assert len(calls) == 1


class TestTuneMemo:
    def test_tuning_reused_for_identical_problems(self):
        memo = CostMemo()
        model = join_model()
        program = naive_join_spec()
        estimate = memo.estimate(
            program, lambda: CostEstimator(model).estimate(program)
        )
        first = memo.tune(estimate, JOIN_STATS)
        second = memo.tune(estimate, JOIN_STATS)
        assert first is second
        assert memo.stats.tune_misses == 1
        assert memo.stats.tune_hits == 1

    def test_different_stats_are_different_problems(self):
        memo = CostMemo()
        model = join_model()
        program = naive_join_spec()
        estimate = memo.estimate(
            program, lambda: CostEstimator(model).estimate(program)
        )
        memo.tune(estimate, JOIN_STATS)
        memo.tune(estimate, {"x": 2.0**10, "y": 2.0**8})
        assert memo.stats.tune_misses == 2

    def test_sizes_and_clear(self):
        memo = CostMemo()
        model = join_model()
        program = naive_join_spec()
        estimate = memo.estimate(
            program, lambda: CostEstimator(model).estimate(program)
        )
        memo.tune(estimate, JOIN_STATS)
        estimates, tunings, _subtrees = memo.sizes()
        assert estimates == 1 and tunings == 1
        memo.clear()
        assert memo.sizes() == (0, 0, 0)


class TestSynthesizerIntegration:
    def test_repeated_synthesis_hits_the_cache(self):
        synth = Synthesizer(
            hierarchy=hdd_ram_hierarchy(8 * MB), max_depth=2, max_programs=60
        )

        def run():
            return synth.synthesize(
                spec=naive_join_spec(),
                input_annots=JOIN_ANNOTS,
                input_locations={"R": "HDD", "S": "HDD"},
                stats=JOIN_STATS,
            )

        first, second = run(), run()
        assert first.cache.estimate_hits == 0 or (
            first.cache.estimate_hits < first.cache.estimate_misses
        )
        # The second run re-visits exactly the same programs: everything
        # is served from the memo.
        assert second.cache.estimate_misses == 0
        assert second.cache.tune_misses == 0
        assert second.cache.estimate_hits > 0
        assert second.best.program == first.best.program
        assert second.opt_cost == first.opt_cost

    def test_cache_counters_reported_per_run(self):
        synth = Synthesizer(
            hierarchy=hdd_ram_hierarchy(8 * MB), max_depth=2, max_programs=60
        )

        def run():
            return synth.synthesize(
                spec=naive_join_spec(),
                input_annots=JOIN_ANNOTS,
                input_locations={"R": "HDD", "S": "HDD"},
                stats=JOIN_STATS,
            )

        first, second = run(), run()
        # Per-run deltas, not cumulative totals.
        assert second.cache.estimate_hits <= (
            first.cache.estimate_hits + first.cache.estimate_misses
        )
        assert second.cache.hit_rate == 1.0

    def test_intra_run_tuning_reuse_across_candidates(self):
        synth = Synthesizer(
            hierarchy=hdd_ram_hierarchy(8 * MB), max_depth=3, max_programs=120
        )
        result = synth.synthesize(
            spec=naive_join_spec(),
            input_annots=JOIN_ANNOTS,
            input_locations={"R": "HDD", "S": "HDD"},
            stats=JOIN_STATS,
        )
        # Structurally different candidates collapse to identical
        # optimization problems; the optimizer runs once per problem.
        assert result.cache.tune_hits > 0
        assert result.cache.tune_misses < result.candidates_costed


class TestBoundedEviction:
    """A table at the cap sheds its oldest half — never the whole table.

    The old behaviour (``table.clear()`` at ``maxsize``) discarded every
    byte of amortization in one insert; these tests pin both the new
    eviction shape and the invariant that makes any eviction safe: a
    capped memo only ever recomputes, it never changes answers.
    """

    def _programs(self):
        """Five distinct programs, all estimable under ``join_model``."""
        from repro.ocal.builders import for_, sing, tup, v

        return [
            for_("a", v("R"), sing(v("a"))),
            for_("a", v("S"), sing(v("a"))),
            for_("a", v("R"), sing(tup(v("a"), v("a")))),
            for_("a", v("S"), sing(tup(v("a"), v("a")))),
            for_("a", v("R"), for_("b", v("S"), sing(tup(v("a"), v("b"))))),
        ]

    def test_trim_keeps_the_newest_half(self):
        from repro.cost.cache import _trim_oldest_half

        table = {f"k{i}": i for i in range(6)}
        _trim_oldest_half(table)
        assert list(table) == ["k3", "k4", "k5"]

    def test_trim_of_tiny_table_still_makes_room(self):
        from repro.cost.cache import _trim_oldest_half

        table = {"only": 1}
        _trim_oldest_half(table)
        assert table == {}

    def test_at_cap_insert_keeps_recent_entries(self):
        memo = CostMemo(maxsize=4)
        programs = self._programs()
        originals = [
            memo.estimate(
                program,
                lambda p=program: CostEstimator(
                    join_model(), memo=memo
                ).estimate(p),
            )
            for program in programs[:4]
        ]
        # Table is full; the next insert evicts the *oldest half* only.
        memo.estimate(
            programs[4],
            lambda: CostEstimator(join_model(), memo=memo).estimate(
                programs[4]
            ),
        )
        held, _, _ = memo.sizes()
        assert held == 3  # 4 - 2 evicted + 1 inserted
        # The newest pre-eviction entries survived…
        assert memo.has_estimate(programs[2])
        assert memo.has_estimate(programs[3])
        # …the oldest were evicted…
        assert not memo.has_estimate(programs[0])
        assert not memo.has_estimate(programs[1])
        # …and an evicted entry recomputes to the same answer.
        recomputed = memo.estimate(
            programs[0],
            lambda: CostEstimator(join_model(), memo=memo).estimate(
                programs[0]
            ),
        )
        assert recomputed.total == originals[0].total

    def test_capped_memo_never_changes_the_winner(self):
        def run(cap):
            synth = Synthesizer(
                hierarchy=hdd_ram_hierarchy(8 * MB),
                max_depth=2,
                max_programs=60,
            )
            memo = synth.memo_for_inputs(
                JOIN_ANNOTS, {"R": "HDD", "S": "HDD"}, JOIN_STATS
            )
            if cap is not None:
                memo.maxsize = cap
            results = [
                synth.synthesize(
                    spec=naive_join_spec(),
                    input_annots=JOIN_ANNOTS,
                    input_locations={"R": "HDD", "S": "HDD"},
                    stats=JOIN_STATS,
                )
                for _ in range(2)  # second run reuses the evicting memo
            ]
            return results

        unlimited = run(None)
        starved = run(4)  # evicts constantly
        for free, capped in zip(unlimited, starved):
            assert capped.best.program == free.best.program
            assert capped.opt_cost == free.opt_cost
            assert capped.best.tuned.values == free.best.tuned.values

    def test_capped_memo_never_changes_reestimation_results(self):
        from repro.ocal.builders import for_, sing, tup, v

        inner = for_(
            "yB", v("S"), sing(tup(v("xB"), v("yB"))), block_in="k2"
        )
        warm_with = for_("xB", v("R"), inner, block_in="k1")
        target = for_("xB", v("R"), inner, block_in="k3")
        memo = CostMemo(maxsize=2)  # subtree table evicts while warming
        CostEstimator(join_model(), memo=memo).estimate(warm_with)
        via_capped = CostEstimator(join_model(), memo=memo).estimate(target)
        fresh = CostEstimator(join_model()).estimate(target)
        assert via_capped.total == fresh.total
        assert via_capped.constraints == fresh.constraints
        assert via_capped.events.init == fresh.events.init
        assert via_capped.events.unit == fresh.events.unit


class TestSubtreeCache:
    """Incremental re-estimation: cached subtrees replay exactly (ISSUE 5)."""

    def _estimate(self, program, memo):
        model = join_model()
        return CostEstimator(model, memo=memo).estimate(program)

    def test_sibling_candidates_share_subtrees(self):
        from repro.ocal.builders import for_, sing, tup, v

        # R and S have identical element annotations, so the loop body
        # is visited under a bit-identical context in both programs.
        body = sing(tup(v("xB"), v("xB")))
        a = for_("xB", v("R"), body)
        b = for_("xB", v("S"), body)
        memo = CostMemo()
        self._estimate(a, memo)
        before = memo.stats.subtree_hits
        self._estimate(b, memo)
        # The shared loop body (same subtree, same context) hits.
        assert memo.stats.subtree_hits > before

    def test_cached_estimate_identical_to_fresh_walk(self):
        from repro.ocal.builders import for_, sing, tup, v

        inner = for_("yB", v("S"), sing(tup(v("xB"), v("yB"))), block_in="k2")
        warm_with = for_("xB", v("R"), inner, block_in="k1")
        target = for_("xB", v("R"), inner, block_in="k3")
        memo = CostMemo()
        self._estimate(warm_with, memo)  # seeds subtree entries
        via_cache = self._estimate(target, memo)
        fresh = CostEstimator(join_model()).estimate(target)
        assert via_cache.total == fresh.total
        assert via_cache.constraints == fresh.constraints
        assert via_cache.parameters == fresh.parameters
        assert via_cache.events.init == fresh.events.init
        assert via_cache.events.unit == fresh.events.unit

    def test_maxsize_bounds_the_tables(self):
        from repro.ocal.builders import for_, sing, v

        memo = CostMemo(maxsize=2)
        for name in ("R", "S"):
            program = for_("a", v(name), sing(v("a")))
            memo.estimate(
                program,
                lambda p=program: CostEstimator(
                    join_model(), memo=memo
                ).estimate(p),
            )
        assert len(memo._estimates) <= 2
        assert len(memo.subtrees) <= 2
