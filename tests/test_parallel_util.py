"""The shared worker-pool utility (``repro.parallel``, DESIGN.md §13).

Every parallel lever in the codebase — frontier costing, partition-
parallel execution, batch synthesis — resolves its worker count and
builds its pool through this one module, so its contract is pinned
here: deterministic chunking, the ``REPRO_PARALLEL`` escape hatch, and
order-preserving fan-out.
"""

import pytest

from repro.parallel import (
    PARALLEL_ENV,
    WorkerPool,
    chunk_slices,
    cpu_count,
    parallel_enabled,
    resolve_workers,
    run_tasks,
    worker_seed,
)


class TestResolveWorkers:
    def test_none_means_serial(self):
        assert resolve_workers(None) == 1

    def test_one_means_serial(self):
        assert resolve_workers(1) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_zero_means_auto(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        assert resolve_workers(0) in (1, cpu_count())

    def test_clamped_to_task_count(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        assert resolve_workers(8, task_count=3) <= 3
        assert resolve_workers(8, task_count=1) == 1

    def test_escape_hatch_forces_serial(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "0")
        assert not parallel_enabled()
        assert resolve_workers(8) == 1
        assert resolve_workers(0) == 1

    def test_escape_hatch_off_values(self, monkeypatch):
        for value in ("false", "no", "off", "0"):
            monkeypatch.setenv(PARALLEL_ENV, value)
            assert not parallel_enabled()
        monkeypatch.setenv(PARALLEL_ENV, "1")
        assert parallel_enabled()
        monkeypatch.delenv(PARALLEL_ENV)
        assert parallel_enabled()


class TestChunkSlices:
    def test_covers_range_in_order(self):
        slices = chunk_slices(10, 3)
        assert slices[0][0] == 0 and slices[-1][1] == 10
        for (_, hi), (lo, _) in zip(slices, slices[1:]):
            assert hi == lo

    def test_near_equal_sizes(self):
        sizes = [hi - lo for lo, hi in chunk_slices(11, 4)]
        assert sum(sizes) == 11
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        slices = chunk_slices(2, 5)
        assert len(slices) <= 2
        assert all(hi > lo for lo, hi in slices)

    def test_empty(self):
        assert chunk_slices(0, 3) == []


class TestWorkerSeed:
    def test_deterministic(self):
        assert worker_seed(7, 3) == worker_seed(7, 3)

    def test_distinct_per_index(self):
        seeds = {worker_seed(7, index) for index in range(16)}
        assert len(seeds) == 16


def _double(x):
    return 2 * x


class TestRunTasks:
    def test_serial_path_preserves_order(self):
        assert run_tasks(_double, [3, 1, 2], workers=1) == [6, 2, 4]

    def test_parallel_path_matches_serial(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        tasks = list(range(20))
        assert run_tasks(_double, tasks, workers=2) == [
            2 * t for t in tasks
        ]

    def test_escape_hatch_runs_inline(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "0")
        assert run_tasks(_double, [5, 6], workers=4) == [10, 12]


class TestWorkerPool:
    def test_rejects_serial_width(self):
        with pytest.raises(ValueError):
            WorkerPool(1)

    def test_map_ordered(self):
        with WorkerPool(2) as pool:
            assert pool.map_ordered(_double, [4, 5, 6]) == [8, 10, 12]
