"""The shared worker-pool utility (``repro.parallel``, DESIGN.md §13).

Every parallel lever in the codebase — frontier costing, partition-
parallel execution, batch synthesis — resolves its worker count and
builds its pool through this one module, so its contract is pinned
here: deterministic chunking, the ``REPRO_PARALLEL`` escape hatch, and
order-preserving fan-out.
"""

import os
import signal
import time

import pytest

from repro.parallel import (
    PARALLEL_ENV,
    PoolTaskTimeout,
    WorkerPool,
    chunk_slices,
    cpu_count,
    live_pool_count,
    parallel_enabled,
    resolve_workers,
    run_tasks,
    shutdown_all_pools,
    worker_seed,
)


class TestResolveWorkers:
    def test_none_means_serial(self):
        assert resolve_workers(None) == 1

    def test_one_means_serial(self):
        assert resolve_workers(1) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_zero_means_auto(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        assert resolve_workers(0) in (1, cpu_count())

    def test_clamped_to_task_count(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        assert resolve_workers(8, task_count=3) <= 3
        assert resolve_workers(8, task_count=1) == 1

    def test_escape_hatch_forces_serial(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "0")
        assert not parallel_enabled()
        assert resolve_workers(8) == 1
        assert resolve_workers(0) == 1

    def test_env_outranks_explicit_workers(self, monkeypatch):
        # Precedence is pinned, not incidental: the escape hatch exists
        # so an operator can globally disable forking on a box where it
        # misbehaves, and an API caller must not be able to override
        # that from code.  REPRO_PARALLEL=0 beats every workers=N.
        monkeypatch.setenv(PARALLEL_ENV, "0")
        for explicit in (2, 8, 64):
            assert resolve_workers(explicit) == 1
        monkeypatch.setenv(PARALLEL_ENV, "1")
        assert resolve_workers(8) == 8

    def test_escape_hatch_off_values(self, monkeypatch):
        for value in ("false", "no", "off", "0"):
            monkeypatch.setenv(PARALLEL_ENV, value)
            assert not parallel_enabled()
        monkeypatch.setenv(PARALLEL_ENV, "1")
        assert parallel_enabled()
        monkeypatch.delenv(PARALLEL_ENV)
        assert parallel_enabled()


class TestChunkSlices:
    def test_covers_range_in_order(self):
        slices = chunk_slices(10, 3)
        assert slices[0][0] == 0 and slices[-1][1] == 10
        for (_, hi), (lo, _) in zip(slices, slices[1:]):
            assert hi == lo

    def test_near_equal_sizes(self):
        sizes = [hi - lo for lo, hi in chunk_slices(11, 4)]
        assert sum(sizes) == 11
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        slices = chunk_slices(2, 5)
        assert len(slices) <= 2
        assert all(hi > lo for lo, hi in slices)

    def test_empty(self):
        assert chunk_slices(0, 3) == []


class TestWorkerSeed:
    def test_deterministic(self):
        assert worker_seed(7, 3) == worker_seed(7, 3)

    def test_distinct_per_index(self):
        seeds = {worker_seed(7, index) for index in range(16)}
        assert len(seeds) == 16


def _double(x):
    return 2 * x


class TestRunTasks:
    def test_serial_path_preserves_order(self):
        assert run_tasks(_double, [3, 1, 2], workers=1) == [6, 2, 4]

    def test_parallel_path_matches_serial(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        tasks = list(range(20))
        assert run_tasks(_double, tasks, workers=2) == [
            2 * t for t in tasks
        ]

    def test_escape_hatch_runs_inline(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "0")
        assert run_tasks(_double, [5, 6], workers=4) == [10, 12]


class TestWorkerPool:
    def test_rejects_serial_width(self):
        with pytest.raises(ValueError):
            WorkerPool(1)

    def test_map_ordered(self):
        with WorkerPool(2) as pool:
            assert pool.map_ordered(_double, [4, 5, 6]) == [8, 10, 12]

    def test_submit_returns_a_future(self):
        with WorkerPool(2) as pool:
            assert pool.submit(_double, 21).result() == 42


def _boom(task):
    raise RuntimeError("worker blew up")


class TestPoolLifecycle:
    """No pool may outlive its work — even on the exception path."""

    def test_context_manager_closes(self):
        before = live_pool_count()
        with WorkerPool(2) as pool:
            assert not pool.closed
            assert live_pool_count() == before + 1
        assert pool.closed
        assert live_pool_count() == before

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()
        assert pool.closed

    def test_worker_exception_still_closes_the_pool(self):
        before = live_pool_count()
        with pytest.raises(RuntimeError, match="worker blew up"):
            run_tasks(_boom, [1, 2], workers=2)
        assert live_pool_count() == before

    def test_no_pool_survives_a_failed_synthesize_all(self, monkeypatch):
        from repro.api import Session
        from repro.api import session as session_module

        monkeypatch.setattr(session_module, "_synthesize_task", _boom)
        before = live_pool_count()
        with pytest.raises(RuntimeError, match="worker blew up"):
            Session().synthesize_all(
                ["aggregation", "grace-join"],
                scale="validation",
                parallel=2,
            )
        assert live_pool_count() == before

    def test_primitive_library_context_manager_closes_its_pool(self):
        from repro.hierarchy import MB, hdd_ram_hierarchy
        from repro.runtime.accounting import ExecutionConfig
        from repro.runtime.primitives import PrimitiveLibrary

        config = ExecutionConfig(
            hierarchy=hdd_ram_hierarchy(8 * MB), input_locations={}
        )
        before = live_pool_count()
        with PrimitiveLibrary(config, stores={}) as lib:
            lib.workers = 2
            pool = lib.worker_pool()
            if pool is not None:  # fork available
                assert live_pool_count() == before + 1
        assert live_pool_count() == before
        if pool is not None:
            assert pool.closed

    def test_shutdown_all_pools_reaps_leaked_pools(self):
        pool = WorkerPool(2)  # deliberately leaked: no close, no with
        assert live_pool_count() >= 1
        closed = shutdown_all_pools()
        assert closed >= 1
        assert pool.closed
        assert live_pool_count() == 0
        # Idempotent: a second sweep finds nothing to do.
        assert shutdown_all_pools() == 0


def _kill_once(task):
    """SIGKILL the worker the first time any worker sees the sentinel
    missing; every later call (post-respawn) computes normally."""
    sentinel, value = task
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("killed")
        os.kill(os.getpid(), signal.SIGKILL)
    return 2 * value


def _die_unless_main(task):
    """SIGKILL every *worker* process; only the inline serial fallback
    (running in the main test process) survives to return a value."""
    main_pid, value = task
    if os.getpid() != main_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return 3 * value


def _sleep_then_return(task):
    time.sleep(30)
    return task


class TestPoolResilience:
    """Worker death and runaway tasks must not take down the caller
    (DESIGN.md §16): one respawn re-running only the lost work, then a
    recorded degrade to serial, and a typed per-task timeout."""

    def test_sigkill_mid_map_respawns_and_completes(self, tmp_path):
        sentinel = str(tmp_path / "killed-once")
        with WorkerPool(2) as pool:
            results = pool.map_ordered(
                _kill_once, [(sentinel, v) for v in (1, 2, 3)]
            )
            assert results == [2, 4, 6]
            assert pool.respawns == 1
            assert not pool.degraded
            # The respawned pool keeps serving ordinary work.
            assert pool.map_ordered(_double, [5]) == [10]

    def test_persistent_worker_death_degrades_to_serial(self):
        main_pid = os.getpid()
        with WorkerPool(2) as pool:
            results = pool.map_ordered(
                _die_unless_main, [(main_pid, v) for v in (1, 2)]
            )
            assert results == [3, 6]
            assert pool.respawns == 1
            assert pool.degraded

    def test_task_timeout_raises_typed_error(self):
        with WorkerPool(2) as pool:
            with pytest.raises(PoolTaskTimeout) as excinfo:
                pool.map_ordered(
                    _sleep_then_return, [0], task_timeout=0.5
                )
            assert excinfo.value.index == 0
            assert excinfo.value.timeout == 0.5
            # The stuck worker was killed and replaced: the pool is
            # immediately usable again.
            assert pool.map_ordered(_double, [9]) == [18]

    def test_worker_exception_is_not_swallowed_by_resilience(self):
        with WorkerPool(2) as pool:
            with pytest.raises(RuntimeError, match="worker blew up"):
                pool.map_ordered(_boom, [1])
            assert pool.respawns == 0
            assert not pool.degraded
