"""Diagnostic records: rendering, serialization, severity contract,
aggregation helpers, and the positioned traversal they rely on."""

import pytest

from repro.analysis import (
    Diagnostic,
    VerificationError,
    errors,
    has_errors,
    render_report,
)
from repro.analysis.diagnostics import walk_paths
from repro.ocal.ast import format_path, node_at
from repro.ocal.builders import concat, lit, sing, tup, v


def test_render_includes_code_severity_and_path():
    diagnostic = Diagnostic(
        code="PLC003",
        message="does not follow the hierarchy",
        path=(("fn", None), ("body", None)),
    )
    assert diagnostic.render() == (
        "PLC003 error at fn.body: does not follow the hierarchy"
    )


def test_render_with_rule_and_hint():
    diagnostic = Diagnostic(
        code="TYP001",
        message="boom",
        rule="apply-block",
        hint="re-synthesize",
    )
    rendered = diagnostic.render()
    assert "[rule: apply-block]" in rendered
    assert rendered.endswith("hint: re-synthesize")
    assert "at <root>" in rendered


def test_unknown_severity_rejected():
    with pytest.raises(ValueError, match="unknown severity"):
        Diagnostic(code="X", message="m", severity="fatal")


def test_json_round_trip_preserves_everything():
    diagnostic = Diagnostic(
        code="CAP002",
        message="missing parameter",
        severity="warning",
        path=(("items", 1), ("source", None)),
        rule="seq-ac",
        hint="re-synthesize for this hierarchy",
    )
    doc = diagnostic.to_json()
    assert doc["path"] == [["items", 1], ["source", None]]
    assert Diagnostic.from_json(doc) == diagnostic


def test_json_omits_unset_optionals():
    doc = Diagnostic(code="EFF001", message="m").to_json()
    assert "rule" not in doc and "hint" not in doc
    assert Diagnostic.from_json(doc) == Diagnostic(code="EFF001", message="m")


def test_errors_and_has_errors_filter_by_severity():
    warning = Diagnostic(code="W", message="w", severity="warning")
    error = Diagnostic(code="E", message="e")
    assert errors([warning]) == []
    assert errors([warning, error]) == [error]
    assert not has_errors([warning])
    assert has_errors([warning, error])


def test_render_report_one_line_per_finding():
    report = render_report(
        [
            Diagnostic(code="A1", message="first"),
            Diagnostic(code="B2", message="second", severity="warning"),
        ]
    )
    assert report.splitlines() == [
        "A1 error at <root>: first",
        "B2 warning at <root>: second",
    ]


def test_verification_error_carries_diagnostics_and_context():
    diagnostics = [Diagnostic(code="PLC002", message="unknown node")]
    error = VerificationError(diagnostics, context="rule 'x' misfired")
    assert error.diagnostics == diagnostics
    assert str(error).startswith("rule 'x' misfired\n")
    assert "PLC002" in str(error)


def test_walk_paths_agrees_with_node_at():
    program = sing(concat(tup(lit(1), v("x")), v("y")))
    seen = dict(walk_paths(program))
    assert seen[()] is program
    # every yielded path resolves back to the yielded node
    for path, node in seen.items():
        assert node_at(program, path) is node
    # tuple fields carry indices, scalar node fields carry None
    assert (("item", None), ("left", None), ("items", 1)) in seen
    assert format_path((("item", None), ("left", None), ("items", 1))) == (
        "item.left.items[1]"
    )
