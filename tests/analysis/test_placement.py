"""The verifier's placement pass: PLC001–PLC005 over concrete
hierarchies, including the location-environment resolution that lets
``order-inputs``-wrapped annotated loops verify."""

from repro.analysis import placement_pass
from repro.hierarchy import hdd_ram_cache_hierarchy, hdd_ram_hierarchy
from repro.ocal.builders import (
    app,
    concat,
    fold_l,
    for_,
    if_,
    lam,
    le,
    length,
    lit,
    sing,
    tup,
    v,
    add,
)

HIERARCHY = hdd_ram_hierarchy()

ON_HDD = {"R": "HDD"}


def _codes(diagnostics):
    return [d.code for d in diagnostics]


def _seq_for(source=None, seq=("HDD", "RAM"), block_in="k", body=None):
    return for_(
        "x",
        source if source is not None else v("R"),
        body if body is not None else sing(v("x")),
        block_in=block_in,
        seq=seq,
    )


def test_well_placed_program_is_clean():
    assert placement_pass(_seq_for(), HIERARCHY, ON_HDD) == []


def test_plc001_unknown_input_location():
    (diagnostic,) = placement_pass(v("R"), HIERARCHY, {"R": "TAPE"})
    assert diagnostic.code == "PLC001"
    assert "'TAPE'" in diagnostic.message


def test_plc001_unknown_output_location():
    found = placement_pass(
        v("R"), HIERARCHY, ON_HDD, output_location="TAPE"
    )
    assert _codes(found) == ["PLC001"]
    assert "output location" in found[0].message


def test_plc002_unknown_seq_node_golden_render():
    (diagnostic,) = placement_pass(
        _seq_for(seq=("HDD", "TAPE")), HIERARCHY, ON_HDD
    )
    assert diagnostic.render() == (
        "PLC002 error at <root>: sequential-access annotation "
        "[HDD ⇝ TAPE] names unknown hierarchy node(s) ['TAPE'] "
        "(nodes: ['HDD', 'RAM'])"
    )


def test_plc003_movement_must_follow_hierarchy_edge():
    # On Cache→RAM→HDD, HDD data moves to RAM, never straight to Cache.
    hierarchy = hdd_ram_cache_hierarchy()
    (diagnostic,) = placement_pass(
        _seq_for(seq=("HDD", "Cache")), hierarchy, ON_HDD
    )
    assert diagnostic.code == "PLC003"
    assert "moves to 'RAM'" in diagnostic.message


def test_plc004_unblocked_loop():
    (diagnostic,) = placement_pass(
        _seq_for(block_in=1), HIERARCHY, ON_HDD
    )
    assert diagnostic.code == "PLC004"
    assert "unblocked" in diagnostic.message


def test_plc004_source_not_a_named_input():
    (diagnostic,) = placement_pass(
        _seq_for(source=concat(v("R"), v("R"))), HIERARCHY, ON_HDD
    )
    assert diagnostic.code == "PLC004"
    assert "not a named input" in diagnostic.message


def test_plc004_source_on_wrong_device():
    (diagnostic,) = placement_pass(_seq_for(), HIERARCHY, {"R": "RAM"})
    assert diagnostic.code == "PLC004"
    assert "declared on 'RAM'" in diagnostic.message


def test_plc004_output_write_back_interferes():
    (diagnostic,) = placement_pass(
        _seq_for(), HIERARCHY, ON_HDD, output_location="HDD"
    )
    assert diagnostic.code == "PLC004"
    assert "write-back" in diagnostic.message


def test_plc004_foldl_outside_application_position():
    program = fold_l(
        lit(0),
        lam(("a", "x"), add(v("a"), v("x"))),
        block_in="k",
        seq=("HDD", "RAM"),
    )
    (diagnostic,) = placement_pass(program, HIERARCHY, ON_HDD)
    assert diagnostic.code == "PLC004"
    assert "outside application position" in diagnostic.message


def test_annotated_foldl_in_application_position_is_clean():
    program = app(
        fold_l(
            lit(0),
            lam(("a", "x"), add(v("a"), v("x"))),
            block_in="k",
            seq=("HDD", "RAM"),
        ),
        v("R"),
    )
    assert placement_pass(program, HIERARCHY, ON_HDD) == []


def test_plc005_body_interference_is_a_warning():
    inner = for_("y", v("S"), sing(tup(v("x"), v("y"))))
    found = placement_pass(
        _seq_for(body=inner), HIERARCHY, {"R": "HDD", "S": "HDD"}
    )
    assert _codes(found) == ["PLC005"]
    assert found[0].severity == "warning"
    assert "accesses interleave" in found[0].message


def test_nested_annotated_reader_does_not_interfere():
    # swap-iter can nest two annotated loops over the same device; each
    # carries its own seek accounting, so this is clean.
    inner = for_(
        "y",
        v("S"),
        sing(tup(v("x"), v("y"))),
        block_in="k2",
        seq=("HDD", "RAM"),
    )
    found = placement_pass(
        _seq_for(body=inner), HIERARCHY, {"R": "HDD", "S": "HDD"}
    )
    assert found == []


def test_loop_variable_shadows_input_location():
    # The inner loop iterates the *outer block view*, not the HDD input,
    # so there is no interference even though the names collide.
    inner = for_("y", v("x"), sing(v("y")))
    found = placement_pass(
        _seq_for(body=inner), HIERARCHY, {"R": "HDD", "x": "HDD"}
    )
    assert found == []


def test_order_inputs_wrapper_resolves_bound_locations():
    # The shape order-inputs produces: the annotated loop's source is a
    # lambda-bound name whose location comes from an if over two input
    # orderings.  Both branches place each component on HDD, so the
    # binding resolves and the annotation verifies.
    inner = _seq_for(source=v("Ro"))
    program = app(
        lam(("Ro", "So"), inner),
        if_(
            le(app(length(), v("R")), app(length(), v("S"))),
            tup(v("R"), v("S")),
            tup(v("S"), v("R")),
        ),
    )
    assert placement_pass(
        program, HIERARCHY, {"R": "HDD", "S": "HDD"}
    ) == []


def test_order_inputs_wrapper_with_conflicting_branches_rejected():
    # With S in RAM the two orderings disagree on Ro's device, the
    # binding cannot resolve, and the annotation loses its source.
    inner = _seq_for(source=v("Ro"))
    program = app(
        lam(("Ro", "So"), inner),
        if_(
            le(app(length(), v("R")), app(length(), v("S"))),
            tup(v("R"), v("S")),
            tup(v("S"), v("R")),
        ),
    )
    found = placement_pass(program, HIERARCHY, {"R": "HDD", "S": "RAM"})
    assert _codes(found) == ["PLC004"]
    assert "not a named input" in found[0].message


def test_diagnostic_path_points_at_the_annotated_loop():
    program = sing(_seq_for(seq=("HDD", "TAPE")))
    (diagnostic,) = placement_pass(program, HIERARCHY, ON_HDD)
    assert diagnostic.path == (("item", None),)
