"""The verifier's type pass: TYP001–TYP004 plus the annot→type bridge."""

from repro.analysis import input_types_from_annots, type_pass
from repro.analysis.type_pass import annot_to_type
from repro.cost.annotated import ListAnnot, TupleAnnot, const_size
from repro.ocal.ast import SizeAnnot
from repro.ocal.builders import (
    app,
    concat,
    empty,
    lam,
    lit,
    sing,
    tup,
    v,
)
from repro.ocal.types import ANY, INT, ListType, TupleType
from repro.symbolic import Const

INTS = ListType(INT)

ROW = ListAnnot(const_size(8), Const(100))


def test_clean_program_yields_no_diagnostics():
    program = sing(concat(v("R"), v("S")))
    assert type_pass(program, {"R": INTS, "S": INTS}) == []


def test_typ001_carries_checker_message_and_path():
    program = sing(concat(lit(1), empty()))
    (diagnostic,) = type_pass(program, {})
    assert diagnostic.code == "TYP001"
    assert diagnostic.path == (("item", None), ("left", None))
    assert diagnostic.message == "⊔ left operand must be a list, got Int"
    # golden rendering for the type pass
    assert diagnostic.render() == (
        "TYP001 error at item.left: ⊔ left operand must be a list, got Int"
    )


def test_typ002_non_annot_payload():
    program = SizeAnnot(v("R"), "not-an-annot")
    codes = [d.code for d in type_pass(program, {"R": INTS})]
    assert "TYP002" in codes


def test_typ003_tuple_annotation_on_list_producer():
    program = SizeAnnot(sing(lit(1)), TupleAnnot((ROW, ROW)))
    (diagnostic,) = [
        d for d in type_pass(program, {}) if d.code == "TYP003"
    ]
    assert "always produces a list" in diagnostic.message


def test_typ003_list_annotation_on_tuple_constructor():
    program = SizeAnnot(tup(v("R"), v("S")), ROW)
    codes = [d.code for d in type_pass(program, {"R": INTS, "S": INTS})]
    assert "TYP003" in codes


def test_typ003_tuple_annotation_arity_mismatch():
    program = SizeAnnot(tup(v("R"), v("S")), TupleAnnot((ROW,)))
    (diagnostic,) = [
        d for d in type_pass(program, {"R": INTS, "S": INTS})
        if d.code == "TYP003"
    ]
    assert "arity 1" in diagnostic.message
    assert "arity 2" in diagnostic.message


def test_typ003_matching_annotation_accepted():
    program = SizeAnnot(sing(lit(1)), ROW)
    assert type_pass(program, {}) == []


def test_typ004_duplicate_lambda_binding():
    program = app(lam(("x", "x"), v("x")), tup(lit(1), lit(2)))
    diagnostics = type_pass(program, {})
    # one TYP004 at the lambda, no redundant TYP001 for the same finding
    assert [d.code for d in diagnostics] == ["TYP004"]
    assert diagnostics[0].path == (("fn", None),)


def test_annot_to_type_structure():
    annot = ListAnnot(
        TupleAnnot((ROW, const_size(4))), Const(10)
    )
    assert annot_to_type(annot) == ListType(
        TupleType((ListType(ANY), ANY))
    )


def test_input_types_from_annots():
    types = input_types_from_annots({"R": ROW, "p": const_size(4)})
    assert types == {"R": ListType(ANY), "p": ANY}
