"""The capacity pass (CAP001–CAP003, tuned values against re-derived
constraints) and the effect pass (EFF001 shared-list lint)."""

from repro.analysis import capacity_pass, effect_pass
from repro.cost.annotated import ListAnnot, const_size
from repro.cost.estimator import CostModel
from repro.hierarchy import hdd_ram_hierarchy
from repro.ocal.builders import concat, empty, for_, sing, v
from repro.symbolic import Const

HIERARCHY = hdd_ram_hierarchy()

ANNOTS = {"R": ListAnnot(const_size(64), Const(4_000_000))}


def _model():
    return CostModel(
        hierarchy=HIERARCHY,
        input_annots=ANNOTS,
        input_locations={"R": "HDD"},
        output_location=None,
        stats={},
    )


BLOCKED = for_("x", v("R"), sing(v("x")), block_in="k1", block_out="k1")


def test_feasible_values_pass():
    # 1024 rows of 64 bytes stage comfortably in 32 MB of RAM.
    assert capacity_pass(BLOCKED, {"k1": 1024.0}, _model()) == []


def test_cap001_violated_constraint_quotes_both_sides():
    # A block larger than RAM violates the staging constraint.
    found = capacity_pass(BLOCKED, {"k1": 1e9}, _model())
    assert found and all(d.code == "CAP001" for d in found)
    message = found[0].message
    assert "is violated" in message
    assert "k1=1e+09" in message
    # golden rendering for the capacity pass: positioned at the loop
    # binding the violated parameter (the program root here).
    assert found[0].render().startswith(
        "CAP001 error at <root>: constraint '"
    )


def test_cap002_unbound_parameter_hints_at_stale_plan():
    found = capacity_pass(BLOCKED, {}, _model())
    assert found and all(d.code == "CAP002" for d in found)
    assert "['k1']" in found[0].message
    assert "different" in (found[0].hint or "")


def test_cap003_uncostable_program():
    # An input the model knows nothing about cannot be costed at all.
    program = for_("x", v("Z"), sing(v("x")), block_in="k1")
    found = capacity_pass(program, {"k1": 8.0}, _model())
    assert [d.code for d in found] == ["CAP003"]
    assert "cannot re-derive" in found[0].message


def test_parameter_position_points_at_binding_loop():
    program = sing(BLOCKED)
    found = capacity_pass(program, {"k1": 1e9}, _model())
    assert found and found[0].path == (("item", None),)


# ----------------------------------------------------------------------
# Effect pass
# ----------------------------------------------------------------------
def test_eff001_shared_operands_flagged_as_warning():
    (diagnostic,) = effect_pass(concat(v("R"), v("R")))
    assert diagnostic.code == "EFF001"
    assert diagnostic.severity == "warning"
    # golden rendering for the effect pass
    assert diagnostic.render() == (
        "EFF001 warning at <root>: ⊔ operands are the same expression; "
        "a backend mutating its left operand in place would corrupt "
        "the shared list\n"
        "  hint: backends must copy before destructive append"
    )


def test_eff001_positions_nested_concat():
    program = sing(concat(sing(v("R")), sing(v("R"))))
    (diagnostic,) = effect_pass(program)
    assert diagnostic.path == (("item", None),)


def test_distinct_operands_clean():
    assert effect_pass(concat(v("R"), v("S"))) == []


def test_trivial_left_operands_exempt():
    assert effect_pass(concat(empty(), empty())) == []
