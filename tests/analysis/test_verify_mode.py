"""Search-time verification and plan replay.

Three contracts pinned here:

* verify mode is **observational** — winners, derivations, tuned
  values, and the explored space are bit-identical to verify-off,
  across strategies;
* an unsound rule is caught the moment it fires, with the rule's name
  and position in the raised :class:`VerificationError`;
* a plan tuned for one hierarchy, replayed against another, is
  rejected by the capacity pass with a positioned diagnostic — at the
  library layer and through the CLI (exit 1).
"""

import dataclasses
import json

import pytest

from repro import cli
from repro.analysis import VerificationError, errors, verify_experiment, verify_job
from repro.api import Session, default_registry
from repro.ocal.ast import FoldL, For
from repro.rules import Rule, default_rules
from repro.search.synthesizer import Synthesizer, synthesize

WORKLOADS = ("aggregation", "bnl-join")
STRATEGIES = ("exhaustive-bfs", "beam", "best-first")


def _experiment(name):
    workload = default_registry().get(name)
    scale = (
        "validation"
        if "validation" in workload.scales
        else sorted(workload.scales)[0]
    )
    return workload.experiment(scale)


def _run(experiment, strategy, **options):
    return synthesize(
        spec=experiment.spec,
        hierarchy=experiment.hierarchy,
        input_annots=experiment.input_annots,
        input_locations=experiment.input_locations,
        stats=experiment.stats,
        output_location=experiment.output_location,
        strategy=strategy,
        **options,
    )


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_verify_mode_is_observational(name, strategy):
    experiment = _experiment(name)
    plain = _run(experiment, strategy, verify=False)
    checked = _run(experiment, strategy, verify=True)
    assert checked.best.program == plain.best.program
    assert checked.best.derivation == plain.best.derivation
    assert checked.best.tuned.values == plain.best.tuned.values
    assert checked.search_space == plain.search_space


def test_env_var_enables_verification(monkeypatch):
    synthesizer = Synthesizer(hierarchy=_experiment("aggregation").hierarchy)
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    assert not synthesizer._verify_enabled()
    monkeypatch.setenv("REPRO_VERIFY", "1")
    assert synthesizer._verify_enabled()
    monkeypatch.setenv("REPRO_VERIFY", "0")
    assert not synthesizer._verify_enabled()


class _UnsoundSeq(Rule):
    """Annotates any fold with a device the hierarchy does not have."""

    name = "toy-bad-seq"

    def apply(self, node, ctx):
        if isinstance(node, (For, FoldL)) and node.seq is None:
            yield dataclasses.replace(node, seq=("TAPE", "RAM"))


def test_unsound_rule_caught_with_name_and_position():
    experiment = _experiment("aggregation")
    with pytest.raises(VerificationError) as info:
        _run(
            experiment,
            "exhaustive-bfs",
            rules=default_rules() + [_UnsoundSeq()],
            verify=True,
        )
    (diagnostic, *_rest) = info.value.diagnostics
    assert diagnostic.code == "PLC002"
    assert diagnostic.rule == "toy-bad-seq"
    assert "'TAPE'" in diagnostic.message
    assert "toy-bad-seq" in str(info.value)
    # the diagnostic is positioned (the report renders an `at …` site)
    assert " at " in diagnostic.render()


def test_invalid_spec_rejected_before_search():
    experiment = _experiment("aggregation")
    broken = dataclasses.replace(
        experiment, input_locations={"R": "TAPE"}
    )
    with pytest.raises(VerificationError) as info:
        _run(broken, "exhaustive-bfs", verify=True)
    assert info.value.diagnostics[0].rule == "<spec>"


def test_every_registry_spec_verifies():
    registry = default_registry()
    for name in registry.names():
        found = errors(verify_experiment(_experiment(name)))
        assert not found, (name, [d.render() for d in found])


# ----------------------------------------------------------------------
# Cross-hierarchy replay rejection (the serving stack's stale-plan bar)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ssd_tuned_job():
    from repro.service.request import ServiceRequest

    request = ServiceRequest.from_json(
        {"workload": "bnl-join", "hierarchy": "ram-ssd-hdd"}
    )
    experiment, scale = request.resolve()
    return Session().synthesize(experiment, scale=scale)


def test_replayed_plan_rejected_by_capacity_pass(ssd_tuned_job):
    # Clean against the hierarchy it was tuned for…
    assert errors(verify_job(ssd_tuned_job)) == []
    # …rejected when replayed against the two-level default.
    found = errors(verify_job(ssd_tuned_job, hierarchy="hdd-ram"))
    codes = {d.code for d in found}
    assert "CAP001" in codes
    capacity = [d for d in found if d.code == "CAP001"][0]
    assert "is violated" in capacity.message


def test_replayed_plan_rejected_via_cli(ssd_tuned_job, tmp_path, capsys):
    plan_path = tmp_path / "ssd-plan.json"
    plan_path.write_text(json.dumps(ssd_tuned_job.to_json()))
    assert cli.main(["check", "--plan", str(plan_path)]) == 0
    capsys.readouterr()
    assert (
        cli.main(
            ["check", "--plan", str(plan_path), "--hierarchy", "hdd-ram"]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "CAP001" in out
    # exec refuses to run the stale plan
    assert (
        cli.main(
            ["exec", "--plan", str(plan_path), "--hierarchy", "hdd-ram"]
        )
        == 1
    )
    err = capsys.readouterr().err
    assert "not executing" in err
