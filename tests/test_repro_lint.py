"""The repository-specific AST lint (``tools/repro_lint.py``).

Unit coverage for each finding class plus the live gate: the checked
tree itself must be clean, so a regression that sneaks a raw pool or an
unjustified broad except into ``src/`` fails the suite, not just CI.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO_ROOT, "tools", "repro_lint.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
import repro_lint  # noqa: E402


def _codes(source, path="src/repro/example.py"):
    return [code for _, _, code, _ in repro_lint.check_source(path, source)]


def test_direct_pool_construction_flagged():
    source = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "pool = ProcessPoolExecutor(4)\n"
    )
    assert _codes(source) == ["LNT001"]


def test_attribute_pool_construction_flagged():
    source = "import multiprocessing\np = multiprocessing.Pool(2)\n"
    assert _codes(source) == ["LNT001"]


def test_pool_allowed_inside_repro_parallel():
    source = "from concurrent.futures import ProcessPoolExecutor\n" \
             "pool = ProcessPoolExecutor(4)\n"
    assert _codes(source, path="src/repro/parallel.py") == []


def test_bare_except_flagged():
    source = "try:\n    pass\nexcept:\n    pass\n"
    assert _codes(source) == ["LNT002"]


def test_broad_except_without_pragma_flagged():
    source = "try:\n    pass\nexcept Exception:\n    pass\n"
    assert _codes(source) == ["LNT003"]


def test_broad_except_tuple_flagged():
    source = "try:\n    pass\nexcept (ValueError, BaseException):\n    pass\n"
    assert _codes(source) == ["LNT003"]


def test_pragma_on_handler_line_allows():
    source = (
        "try:\n    pass\n"
        "except Exception:  # lint: allow-broad-except\n    pass\n"
    )
    assert _codes(source) == []


def test_pragma_on_previous_line_allows():
    source = (
        "try:\n    pass\n"
        "# lint: allow-broad-except\n"
        "except Exception:\n    pass\n"
    )
    assert _codes(source) == []


def test_narrow_except_clean():
    source = "try:\n    pass\nexcept ValueError:\n    pass\n"
    assert _codes(source) == []


def test_time_sleep_flagged():
    source = "import time\ntime.sleep(0.5)\n"
    assert _codes(source) == ["LNT004"]


def test_imported_sleep_flagged():
    source = "from time import sleep\nsleep(0.5)\n"
    assert _codes(source) == ["LNT004"]


def test_bare_sleep_without_time_import_clean():
    source = "def sleep(s):\n    pass\nsleep(0.5)\n"
    assert _codes(source) == []


def test_asyncio_sleep_clean():
    source = (
        "import asyncio\n"
        "async def wait():\n    await asyncio.sleep(0.5)\n"
    )
    assert _codes(source) == []


def test_sleep_allowed_inside_faults_module():
    source = "import time\ntime.sleep(0.5)\n"
    assert _codes(source, path="src/repro/runtime/faults.py") == []


def test_unknown_path_exits_2(tmp_path):
    assert repro_lint.main([str(tmp_path / "missing")]) == 2


def test_findings_printed_with_location(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n")
    assert repro_lint.main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:3: LNT002" in out


def test_src_tree_is_clean():
    result = subprocess.run(
        [sys.executable, TOOL, "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
