"""Unit tests for the OCAL → Python lowering (DESIGN.md §12).

The parity suite (``tests/runtime/test_compiled_parity.py``) and the
conformance oracle pin end-to-end equivalence; this module pins the
*mechanics*: generated source shape (tuned blocks baked as constants,
hot shapes inlined, rare shapes falling back to evaluator methods), the
per-program cache, evaluation-order/error parity with the interpreter,
and the escape hatch.
"""

import pytest

from repro.codegen.py_codegen import (
    CompiledExec,
    clear_exec_cache,
    compile_exec,
    compiled_exec_enabled,
    exec_cache_size,
)
from repro.hierarchy import KB, hdd_ram_hierarchy
from repro.ocal.builders import (
    add,
    app,
    div,
    empty,
    eq,
    for_,
    func_pow,
    if_,
    lam,
    lit,
    mrg,
    proj,
    sing,
    tree_fold,
    tup,
    unfold_r,
    v,
)
from repro.ocal.interp import InterpreterError, evaluate
from repro.runtime import (
    CompiledBackend,
    ExecutionConfig,
    ExecutionError,
    FileBackend,
    InputSpec,
)


def scan(block=64):
    return for_(
        "xB", v("A"), for_("x", v("xB"), sing(v("x"))), block_in=block
    )


def config(**kwargs):
    defaults = dict(
        hierarchy=hdd_ram_hierarchy(8 * KB),
        input_locations={"A": "HDD", "B": "HDD"},
    )
    defaults.update(kwargs)
    return ExecutionConfig(**defaults)


def run_captured(backend_cls, program, data, specs, tmp_path, **cfg):
    backend = backend_cls(
        workdir=str(tmp_path), seed=3, data=data, capture_output=True
    )
    backend.run(program, specs, config(**cfg))
    return backend.last_output


class TestGeneratedSource:
    def test_blocked_scan_bakes_block_constant(self):
        compiled = compile_exec(scan(block=64))
        assert isinstance(compiled, CompiledExec)
        # The tuned block size is a literal in the loop nest, and the
        # hot scan shape is fully inlined — no AST re-walk at run time.
        assert "64" in compiled.source
        assert "rt.eval(" not in compiled.source
        assert "for " in compiled.source

    def test_different_tuning_compiles_different_source(self):
        a = compile_exec(scan(block=32))
        b = compile_exec(scan(block=128))
        assert a is not b
        assert a.source != b.source

    def test_lambda_step_unfold_is_inlined(self):
        # λ-step unfolds take the interpreter's *generic* path, so the
        # compiled form inlines the step loop; merge steps (mrg) keep
        # the evaluator's fast lane for counter parity.
        step = lam(
            "st",
            if_(
                eq(app(v("length"), proj(v("st"), 1)), lit(0)),
                tup(empty(), tup(empty(), empty())),
                tup(sing(lit(1)), tup(empty(), empty())),
            ),
        )
        lam_unfold = app(unfold_r(step, block_in=4), tup(v("A"), v("B")))
        assert "rt._exec_unfold" not in compile_exec(lam_unfold).source
        mrg_unfold = app(unfold_r(mrg(), block_in=4), tup(v("A"), v("B")))
        assert "rt._exec_unfold" in compile_exec(mrg_unfold).source

    def test_treefold_falls_back_to_evaluator(self):
        sort = app(
            tree_fold(4, empty(), unfold_r(func_pow(2, mrg()), block_in=8)),
            v("A"),
        )
        compiled = compile_exec(sort)
        assert "rt._exec_treefold" in compiled.source

    def test_source_is_attached_to_function(self):
        compiled = compile_exec(scan())
        assert compiled.fn.__repro_source__ == compiled.source


class TestCache:
    def test_structurally_equal_programs_share_compilation(self):
        clear_exec_cache()
        first = compile_exec(scan(block=16))
        again = compile_exec(scan(block=16))
        assert first is again
        assert exec_cache_size() >= 1

    def test_clear_resets(self):
        compile_exec(scan(block=16))
        clear_exec_cache()
        assert exec_cache_size() == 0


class TestScalarSemantics:
    """Pure scalar programs run without touching the evaluator (rt)."""

    def exec_(self, program, env=None):
        return compile_exec(program).fn(dict(env or {}), None)

    def test_arithmetic_and_tuples(self):
        program = add(proj(tup(lit(2), lit(5)), 2), lit(1))
        assert self.exec_(program) == evaluate(program, {})

    def test_unbound_variable_message_matches_evaluator(self):
        with pytest.raises(ExecutionError, match="unbound variable 'S'"):
            self.exec_(v("S"))

    def test_dead_branch_never_evaluates_missing_input(self):
        # `S` is absent from the env; the interpreter only faults on
        # variables it actually evaluates, and so must generated code.
        program = if_(lit(False), v("S"), lit(3))
        assert self.exec_(program) == 3

    def test_non_bool_condition_rejected(self):
        program = if_(lit(1), lit(2), lit(3))
        with pytest.raises(ExecutionError, match="must be Bool"):
            self.exec_(program)

    def test_division_by_zero_matches_interpreter(self):
        program = div(lit(4), lit(0))
        with pytest.raises(InterpreterError, match="division by zero"):
            evaluate(program, {})
        with pytest.raises(InterpreterError, match="division by zero"):
            self.exec_(program)

    def test_integer_division_floors_like_interpreter(self):
        program = div(lit(7), lit(2))
        assert self.exec_(program) == evaluate(program, {})

    def test_bool_int_literals_stay_distinct(self):
        # Lit(False) and Lit(0) hash-cons to *different* programs; the
        # compiled forms must not be conflated through the cache.
        assert self.exec_(if_(lit(False), lit(1), lit(2))) == 2
        assert self.exec_(lit(0)) == 0
        assert self.exec_(lit(False)) is False


class TestBackendEquivalence:
    def test_fold_with_lambda_matches_file(self, tmp_path):
        from repro.ocal.builders import fold_l

        program = for_(
            "xB",
            v("A"),
            sing(
                app(
                    fold_l(lit(0), lam(("acc", "e"), add(v("acc"), v("e")))),
                    v("xB"),
                )
            ),
            block_in=8,
        )
        data = {"A": list(range(20))}
        specs = {"A": InputSpec(20, 8)}
        file_out = run_captured(FileBackend, program, data, specs,
                                tmp_path / "f")
        comp_out = run_captured(CompiledBackend, program, data, specs,
                                tmp_path / "c")
        assert comp_out == file_out

    def test_nested_same_name_loops_do_not_clobber(self, tmp_path):
        # Both loops bind `x`: compile-time scoping must give each its
        # own Python local.
        program = for_(
            "x",
            v("A"),
            for_("x", v("B"), sing(v("x"))),
        )
        data = {"A": [1, 2], "B": [10, 20]}
        specs = {"A": InputSpec(2, 8), "B": InputSpec(2, 8)}
        comp_out = run_captured(CompiledBackend, program, data, specs,
                                tmp_path)
        assert sorted(comp_out) == [10, 10, 20, 20]

    def test_equality_filter_join(self, tmp_path):
        program = for_(
            "x",
            v("A"),
            for_(
                "y",
                v("B"),
                if_(eq(v("x"), v("y")), sing(tup(v("x"), v("y"))), empty()),
            ),
        )
        data = {"A": [1, 2, 3], "B": [2, 3, 4]}
        specs = {"A": InputSpec(3, 8), "B": InputSpec(3, 8)}
        comp_out = run_captured(CompiledBackend, program, data, specs,
                                tmp_path)
        assert sorted(tuple(r) for r in comp_out) == [(2, 2), (3, 3)]


class TestEscapeHatch:
    def test_flag_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_EXEC", raising=False)
        assert compiled_exec_enabled()

    def test_flag_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_EXEC", "0")
        assert not compiled_exec_enabled()

    def test_disabled_backend_never_compiles(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_EXEC", "0")
        clear_exec_cache()
        out = run_captured(
            CompiledBackend,
            scan(),
            {"A": [4, 5, 6]},
            {"A": InputSpec(3, 8)},
            tmp_path,
        )
        assert sorted(out) == [4, 5, 6]
        assert exec_cache_size() == 0
