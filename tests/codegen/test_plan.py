"""Plan construction and backend threading, including the error paths."""

import pytest

from repro.codegen.plan import ExecutablePlan, PlanError, compile_candidate
from repro.hierarchy import KB, hdd_ram_hierarchy
from repro.ocal.builders import app, fold_l, for_, lam, lit, sing, v, add
from repro.optimizer.penalty import OptimizationResult
from repro.runtime import ExecutionConfig, InputSpec, SimBackend
from repro.search.result import Candidate


def scan(block="k1"):
    return for_(
        "xB", v("A"), for_("x", v("xB"), sing(v("x"))), block_in=block
    )


def candidate(program, values):
    return Candidate(
        program=program,
        derivation=("apply-block",),
        estimate=None,
        tuned=OptimizationResult(values=values, cost=1.0, feasible=True),
    )


def config():
    return ExecutionConfig(
        hierarchy=hdd_ram_hierarchy(8 * KB),
        input_locations={"A": "HDD"},
    )


class TestPlanErrors:
    def test_unbound_parameters_rejected(self):
        with pytest.raises(PlanError, match="unbound parameters.*k1"):
            ExecutablePlan(program=scan(), parameter_values={})

    def test_unknown_backend_rejected(self):
        plan = ExecutablePlan(program=scan(64), parameter_values={"k1": 64})
        with pytest.raises(PlanError, match="unknown execution backend"):
            plan.execute(config(), {"A": InputSpec(16, 8)}, backend="gpu")

    def test_unknown_backend_error_lists_registered_backends(self):
        # The error must name *every* valid choice — the registry is the
        # single source of truth, so "compiled" must appear here without
        # any plan-layer changes — and surface as a PlanError, never a
        # bare KeyError from the registry dict.
        plan = ExecutablePlan(program=scan(64), parameter_values={"k1": 64})
        with pytest.raises(PlanError, match=r"'compiled', 'file', 'sim'"):
            plan.execute(config(), {"A": InputSpec(16, 8)}, backend="gpu")

    def test_rejected_backend_options_surface_as_plan_error(self):
        # The sim backend takes no options; the TypeError must not leak.
        plan = ExecutablePlan(program=scan(64), parameter_values={"k1": 64})
        with pytest.raises(PlanError, match="rejected options.*seed"):
            plan.execute(
                config(), {"A": InputSpec(16, 8)}, backend="sim", seed=3
            )

    def test_options_on_backend_instance_rejected(self):
        plan = ExecutablePlan(program=scan(64), parameter_values={"k1": 64})
        with pytest.raises(PlanError, match="already-constructed"):
            plan.execute(
                config(), {"A": InputSpec(16, 8)},
                backend=SimBackend(), seed=3,
            )

    def test_partial_binding_still_rejected(self):
        program = for_(
            "xB",
            v("A"),
            app(fold_l(lit(0), lam(("a", "e"), add(v("a"), v("e"))),
                       block_in="k2"), v("xB")),
            block_in="k1",
        )
        with pytest.raises(PlanError, match="k2"):
            ExecutablePlan(program=program, parameter_values={"k1": 8})


class TestCompileCandidate:
    def test_binds_tuned_values(self):
        plan = compile_candidate(candidate(scan(), {"k1": 128}))
        assert plan.parameter_values == {"k1": 128}

    def test_unseen_parameters_default_to_one(self):
        plan = compile_candidate(candidate(scan(), {}))
        assert plan.parameter_values == {"k1": 1}

    def test_plan_executes_on_both_backends(self, tmp_path):
        plan = compile_candidate(candidate(scan(), {"k1": 64}))
        inputs = {"A": InputSpec(512, 8)}
        sim = plan.execute(config(), inputs, backend=SimBackend())
        from repro.runtime import get_backend

        real = plan.execute(
            config(),
            inputs,
            backend=get_backend("file", workdir=str(tmp_path)),
        )
        assert sim.backend == "sim"
        assert real.backend == "file"
        assert sim.output_card == real.output_card == 512
