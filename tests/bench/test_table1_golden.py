"""Golden regression: the synthesized winner for every Table-1 workload.

Pins the *printed form* of the winning program (and its derivation
chain) for all 16 Table-1 experiments under each of the three search
strategies, so search/cost refactors cannot silently change synthesis
results.  The goldens live in ``goldens/table1_winners.json``.

The harness runs through the declarative front door:
``Session.synthesize_all`` over the central registry's ``table1``-scale
workloads — one session shared across the three strategies, so its
per-hierarchy synthesizers (and their cost memos) amortize estimation
and tuning (≈30s total, not minutes).  This doubles as the acceptance
check that batch synthesis returns exactly the golden winners.

To regenerate after an *intentional* change::

    PYTHONPATH=src python tests/bench/test_table1_golden.py --regen
"""

import json
import os

import pytest

from repro.api import Session, default_registry
from repro.ocal.printer import pretty

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "goldens", "table1_winners.json"
)
STRATEGIES = ("exhaustive-bfs", "beam", "best-first")


def _load_goldens() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def _synthesize_all() -> dict:
    session = Session()
    names = session.workloads(scale="table1")
    results: dict = {}
    for strategy in STRATEGIES:
        jobs = session.synthesize_all(names, scale="table1", strategy=strategy)
        for job in jobs:
            results.setdefault(job.workload, {})[strategy] = {
                "program": pretty(job.winner),
                "derivation": list(job.derivation),
            }
    return results


@pytest.fixture(scope="module")
def synthesized():
    return _synthesize_all()


@pytest.fixture(scope="module")
def goldens():
    return _load_goldens()


def test_golden_file_covers_all_workloads_and_strategies(goldens):
    names = {
        workload.experiment("table1").name
        for workload in default_registry()
        if "table1" in workload.scales
    }
    assert set(goldens) == names
    for name, per_strategy in goldens.items():
        assert set(per_strategy) == set(STRATEGIES), name


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_winners_match_goldens(synthesized, goldens, strategy):
    mismatches = []
    for name, per_strategy in goldens.items():
        expected = per_strategy[strategy]
        actual = synthesized[name][strategy]
        if actual["program"] != expected["program"]:
            mismatches.append(
                f"{name} [{strategy}]\n  expected: {expected['program']}"
                f"\n  actual:   {actual['program']}"
            )
        elif actual["derivation"] != expected["derivation"]:
            mismatches.append(
                f"{name} [{strategy}] derivation "
                f"{actual['derivation']} != {expected['derivation']}"
            )
    assert not mismatches, (
        "synthesized winners drifted from goldens (regenerate with "
        "`python tests/bench/test_table1_golden.py --regen` if the "
        "change is intentional):\n" + "\n".join(mismatches)
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        data = _synthesize_all()
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(
                data, handle, indent=2, sort_keys=True, ensure_ascii=False
            )
            handle.write("\n")
        print(f"regenerated {GOLDEN_PATH}")
    else:
        print(__doc__)
