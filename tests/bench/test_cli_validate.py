"""The ``python -m repro validate`` exit code is CI's validation gate.

A passing report exits 0; any workload whose synthesized winner is not
ranked first exits 1; operator errors (no/unknown workloads) exit 2 —
so a misconfigured CI step can never pass vacuously.
"""

import pytest

from repro import cli


def _report(winner_first_flags):
    return {
        "workloads": [
            {
                "workload": f"w{i}",
                "winner_first": flag,
                "act_over_opt": 1.0,
            }
            for i, flag in enumerate(winner_first_flags)
        ],
        "all_winner_first": all(winner_first_flags),
    }


@pytest.fixture
def fake_report(monkeypatch):
    state = {"report": _report([True]), "calls": []}

    def write_validation_report(path, names, seed, workdir):
        state["calls"].append({"path": path, "names": names, "seed": seed})
        return state["report"]

    import repro.bench.validation as validation

    monkeypatch.setattr(
        validation, "write_validation_report", write_validation_report
    )
    return state


def test_validate_exits_zero_when_all_winners_first(fake_report, tmp_path):
    out = str(tmp_path / "report.json")
    assert cli.main(["validate", "--out", out]) == 0


def test_validate_exits_nonzero_on_any_disagreement(fake_report, tmp_path):
    fake_report["report"] = _report([True, False, True])
    out = str(tmp_path / "report.json")
    assert cli.main(["validate", "--out", out]) == 1


def test_validate_exits_nonzero_on_empty_workload_list(fake_report):
    # `--workloads ""` used to collapse to all() over nothing == True.
    assert cli.main(["validate", "--workloads", ""]) == 2
    assert cli.main(["validate", "--workloads", " , ,"]) == 2
    assert not fake_report["calls"]


def test_validate_exits_nonzero_on_empty_report(fake_report, tmp_path):
    fake_report["report"] = {"workloads": [], "all_winner_first": True}
    out = str(tmp_path / "report.json")
    assert cli.main(["validate", "--out", out]) == 2


def test_validate_exits_nonzero_on_unknown_workload(tmp_path):
    out = str(tmp_path / "report.json")
    code = cli.main(
        ["validate", "--workloads", "no-such-workload", "--out", out]
    )
    assert code == 2


def test_validate_passes_workload_selection_through(fake_report, tmp_path):
    out = str(tmp_path / "report.json")
    cli.main(
        ["validate", "--workloads", "aggregation, set-union", "--out", out]
    )
    assert fake_report["calls"][0]["names"] == ("aggregation", "set-union")
