"""Validation-bench smoke: one small workload, real files, ranking gate.

This is the CI gate for the predicted-vs-measured loop: a scaled-down
Table-1 workload is synthesized, its plans execute on the FileBackend
inside a tmpdir, and the synthesized winner must rank first under the
measured (trace-priced) cost.
"""

import json

import pytest

from repro.bench.validation import (
    DEFAULT_WORKLOADS,
    VALIDATION_WORKLOADS,
    run_validation,
    validation_experiment,
    write_validation_report,
)


class TestWorkloadCatalog:
    def test_default_set_is_large_enough(self):
        assert len(DEFAULT_WORKLOADS) >= 6
        assert set(DEFAULT_WORKLOADS) <= set(VALIDATION_WORKLOADS)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown validation workload"):
            validation_experiment("tape-robot")

    def test_every_workload_instantiates(self):
        for name in VALIDATION_WORKLOADS:
            experiment = validation_experiment(name)
            assert experiment.spec is not None
            assert experiment.inputs


class TestValidationSmoke:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("validation")
        return write_validation_report(
            path=str(base / "BENCH_validation.json"),
            names=("aggregation",),
            seed=7,
            workdir=str(base / "files"),
        ), base

    def test_winner_ranked_first_on_measured_cost(self, report):
        data, _ = report
        (workload,) = data["workloads"]
        assert workload["winner_first"]
        assert workload["measured_ranking"][-1] == "spec"
        assert data["all_winner_first"]

    def test_report_records_both_sides(self, report):
        data, base = report
        on_disk = json.loads(
            (base / "BENCH_validation.json").read_text()
        )
        assert on_disk["workloads"][0]["workload"] == "aggregation"
        for plan in on_disk["workloads"][0]["plans"]:
            assert plan["predicted"] > 0
            assert plan["file_priced"] > 0
            assert plan["file_wall"] is not None
            assert plan["devices"]["HDD"]["bytes_read"] > 0

    def test_predicted_ranking_puts_spec_last(self, report):
        data, _ = report
        (workload,) = data["workloads"]
        assert workload["predicted_ranking"][0] == "winner"
        assert workload["predicted_ranking"][-1] == "spec"


class TestMultisetUnionAgreement:
    def test_merge_workload_agrees(self, tmp_path):
        report = run_validation(
            names=("multiset-union",), seed=7, workdir=str(tmp_path)
        )
        (workload,) = report["workloads"]
        assert workload["winner_first"]
        assert workload["ranking_agreement"]
