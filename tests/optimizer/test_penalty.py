"""Tests for the sequential-penalty derivative-free optimizer."""

import math

import pytest

from repro.cost import Constraint, CostEstimator, CostModel, atom, list_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.ocal.builders import empty, eq, for_, if_, sing, tup, v
from repro.optimizer import optimize_parameters
from repro.symbolic import Const, as_expr, var


class TestUnconstrainedMonotone:
    def test_single_block_maximized(self):
        # cost = x/k, k ≤ 1000 → k = 1000 ("as big as possible").
        cost = var("x") / var("k")
        constraints = [
            Constraint(Const(1), var("k")),
            Constraint(var("k"), Const(1000)),
        ]
        result = optimize_parameters(cost, constraints, {"k"}, {"x": 1e6})
        assert result.feasible
        assert result.values["k"] == pytest.approx(1000, rel=0.05)

    def test_no_parameters(self):
        result = optimize_parameters(var("x") * 2, [], set(), {"x": 21})
        assert result.cost == 42
        assert result.values == {}


class TestCompetingBlocks:
    def test_balanced_split_of_shared_budget(self):
        # cost = c/(k1*k2) with k1 + k2 ≤ 100 → optimum at k1 = k2 = 50.
        cost = as_expr(1e9) / (var("k1") * var("k2"))
        constraints = [
            Constraint(var("k1") + var("k2"), Const(100)),
            Constraint(Const(1), var("k1")),
            Constraint(Const(1), var("k2")),
        ]
        result = optimize_parameters(
            cost, constraints, {"k1", "k2"}, {}
        )
        assert result.feasible
        product = result.values["k1"] * result.values["k2"]
        assert product >= 0.9 * 50 * 50

    def test_asymmetric_weights(self):
        # cost = a/k1 + b/(k1·k2), dominated by the k1 term when a ≫ b:
        # the optimizer should give k1 most of the budget.
        cost = as_expr(1e12) / var("k1") + as_expr(1e6) / (
            var("k1") * var("k2")
        )
        constraints = [
            Constraint(var("k1") + var("k2"), Const(1024)),
            Constraint(Const(1), var("k1")),
            Constraint(Const(1), var("k2")),
        ]
        result = optimize_parameters(cost, constraints, {"k1", "k2"}, {})
        assert result.feasible
        assert result.values["k1"] > result.values["k2"]

    def test_matches_grid_search(self):
        cost = as_expr(3e8) / var("k1") + as_expr(7e9) / (
            var("k1") * var("k2")
        )
        budget = 512
        constraints = [
            Constraint(var("k1") + var("k2"), Const(budget)),
            Constraint(Const(1), var("k1")),
            Constraint(Const(1), var("k2")),
        ]
        result = optimize_parameters(cost, constraints, {"k1", "k2"}, {})

        def evaluate(k1, k2):
            return 3e8 / k1 + 7e9 / (k1 * k2)

        best = min(
            evaluate(k1, budget - k1) for k1 in range(1, budget)
        )
        assert result.cost <= best * 1.1

    def test_infeasible_detected(self):
        constraints = [
            Constraint(var("k"), Const(10)),
            Constraint(Const(20), var("k")),
        ]
        result = optimize_parameters(
            var("x") / var("k"), constraints, {"k"}, {"x": 100}
        )
        assert not result.feasible


class TestNonMonotoneObjective:
    def test_interior_optimum_found(self):
        # cost = a/k + b·k has optimum at k = sqrt(a/b).
        a, b = 1e8, 1.0
        cost = as_expr(a) / var("k") + as_expr(b) * var("k")
        constraints = [
            Constraint(Const(1), var("k")),
            Constraint(var("k"), Const(10**6)),
        ]
        result = optimize_parameters(cost, constraints, {"k"}, {})
        optimum = math.sqrt(a / b)
        best = 2 * math.sqrt(a * b)
        assert result.cost <= best * 1.05
        assert 0.5 * optimum <= result.values["k"] <= 2 * optimum


class TestScipyCrossCheck:
    def test_against_scipy_on_smooth_problem(self):
        from scipy.optimize import minimize

        cost = as_expr(5e8) / var("k1") + as_expr(2e10) / (
            var("k1") * var("k2")
        )
        budget = 2048.0
        constraints = [
            Constraint(var("k1") + var("k2"), Const(budget)),
            Constraint(Const(1), var("k1")),
            Constraint(Const(1), var("k2")),
        ]
        ours = optimize_parameters(cost, constraints, {"k1", "k2"}, {})

        def objective(p):
            return 5e8 / p[0] + 2e10 / (p[0] * p[1])

        scipy_result = minimize(
            objective,
            x0=[budget / 2, budget / 2],
            bounds=[(1, budget), (1, budget)],
            constraints=[
                {"type": "ineq", "fun": lambda p: budget - p[0] - p[1]}
            ],
            method="SLSQP",
        )
        assert ours.cost <= scipy_result.fun * 1.1


class TestEndToEndWithEstimator:
    def test_bnl_blocks_fill_the_buffer_pool(self):
        ram = 8 * MB
        program = for_(
            "xB",
            v("R"),
            for_(
                "yB",
                v("S"),
                for_(
                    "a",
                    v("xB"),
                    for_(
                        "b",
                        v("yB"),
                        if_(
                            eq(v("a"), v("b")),
                            sing(tup(v("a"), v("b"))),
                            empty(),
                        ),
                    ),
                ),
                block_in="k2",
                seq=("HDD", "RAM"),
            ),
            block_in="k1",
        )
        stats = {"x": 2.0**28, "y": 2.0**24}
        model = CostModel(
            hierarchy=hdd_ram_hierarchy(ram),
            input_annots={
                "R": list_annot(atom(1), var("x")),
                "S": list_annot(atom(1), var("y")),
            },
            input_locations={"R": "HDD", "S": "HDD"},
            stats=stats,
        )
        estimate = CostEstimator(model).estimate(program)
        result = optimize_parameters(
            estimate.total, estimate.constraints, estimate.parameters, stats
        )
        assert result.feasible
        k1, k2 = result.values["k1"], result.values["k2"]
        # Blocks fill most of the buffer pool…
        assert k1 + k2 >= 0.5 * ram
        # …and satisfy every constraint.
        env = result.env(stats)
        for constraint in estimate.constraints:
            assert constraint.satisfied(env)

    def test_tuned_cost_beats_naive_parameters(self):
        program = for_(
            "xB",
            v("R"),
            for_("a", v("xB"), sing(v("a"))),
            block_in="k1",
        )
        stats = {"x": 2.0**26}
        model = CostModel(
            hierarchy=hdd_ram_hierarchy(8 * MB),
            input_annots={"R": list_annot(atom(1), var("x"))},
            input_locations={"R": "HDD"},
            stats=stats,
        )
        estimate = CostEstimator(model).estimate(program)
        result = optimize_parameters(
            estimate.total, estimate.constraints, estimate.parameters, stats
        )
        naive_cost = estimate.total.evaluate({**stats, "k1": 1.0})
        assert result.cost < naive_cost / 100


class TestSafeEvalNarrowing:
    """ISSUE 5 satellite: domain errors become inf, malformed problems raise."""

    def test_domain_errors_still_become_inf(self):
        # x/k with k allowed to reach 0 during probing must not crash;
        # the 1/k1 ZeroDivisionError path scores as infinitely bad.
        cost = var("x") / (var("k1") + (-1))  # k1=1 divides by zero
        constraints = [
            Constraint(Const(1), var("k1")),
            Constraint(var("k1"), Const(64)),
        ]
        result = optimize_parameters(cost, constraints, {"k1"}, {"x": 1e6})
        assert result.feasible
        assert result.values["k1"] > 1

    def test_malformed_problem_surfaces_instead_of_inf(self):
        # The objective references a variable that is neither a tuned
        # parameter nor a statistic: that is a malformed problem, and it
        # must raise (KeyError), not silently tune to cost=inf.
        cost = var("x") / var("k1") + var("not_a_binding")
        constraints = [
            Constraint(Const(1), var("k1")),
            Constraint(var("k1"), Const(1000)),
        ]
        with pytest.raises(KeyError, match="unbound symbolic variable"):
            optimize_parameters(cost, constraints, {"k1"}, {"x": 1e6})

    def test_malformed_problem_surfaces_on_interpreted_lane_too(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_COMPILED_COST", "0")
        cost = var("x") / var("k1") + var("not_a_binding")
        constraints = [Constraint(Const(1), var("k1"))]
        with pytest.raises(KeyError):
            optimize_parameters(cost, constraints, {"k1"}, {"x": 1e6})


class TestCompiledLaneParity:
    """The REPRO_COMPILED_COST escape hatch is bit-identical (ISSUE 5)."""

    def _problem(self):
        program = for_(
            "xB",
            v("R"),
            for_("yB", v("S"), sing(tup(v("xB"), v("yB"))), block_in="k2"),
            block_in="k1",
        )
        stats = {"x": 2.0**21, "y": 2.0**16}
        model = CostModel(
            hierarchy=hdd_ram_hierarchy(8 * MB),
            input_annots={
                "R": list_annot(atom(8), var("x")),
                "S": list_annot(atom(8), var("y")),
            },
            input_locations={"R": "HDD", "S": "HDD"},
            stats=stats,
        )
        estimate = CostEstimator(model).estimate(program)
        return estimate, stats

    def test_compiled_and_interpreted_tunes_are_identical(self, monkeypatch):
        estimate, stats = self._problem()
        monkeypatch.setenv("REPRO_COMPILED_COST", "0")
        interpreted = optimize_parameters(
            estimate.total, estimate.constraints, estimate.parameters, stats
        )
        monkeypatch.setenv("REPRO_COMPILED_COST", "1")
        compiled = optimize_parameters(
            estimate.total, estimate.constraints, estimate.parameters, stats
        )
        assert interpreted.values == compiled.values
        assert interpreted.cost == compiled.cost  # exact float equality
        assert interpreted.feasible == compiled.feasible
        assert interpreted.evaluations == compiled.evaluations
