#!/usr/bin/env python3
"""The §7.2 showcase: from insertion sort to External Merge-Sort.

The specification is the one-liner ``foldL([], unfoldR(mrg))`` applied to
a list of singleton lists — an insertion sort that moves Θ(n²) bytes.
OCAS discovers, purely by cost-guided search:

    fldL-to-trfld      foldL → treeFold[2]          (associativity)
    inc-branching ×k   treeFold[2] → treeFold[2^k]  (wider merges)
    apply-block        bin/bout-buffered run I/O

…which is the 2^k-way External Merge-Sort, with the fan-in chosen by the
non-linear optimizer from the seek-time/bandwidth ratio of the disk.

Run:  python examples/external_sort_derivation.py
"""

from repro.cost import atom, list_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.ocal import App, TreeFold, evaluate, pretty
from repro.search import Synthesizer
from repro.symbolic import var
from repro.workloads import insertion_sort_spec, make_singleton_runs


def main() -> None:
    spec = insertion_sort_spec()
    print(f"specification: {pretty(spec)}")

    runs = (512 * MB) // 8  # 2^26 eight-byte records
    synthesizer = Synthesizer(
        hierarchy=hdd_ram_hierarchy(8 * MB),
        max_depth=6,
        max_programs=300,
        max_treefold_arity=32,
    )
    result = synthesizer.synthesize(
        spec=spec,
        input_annots={"Rs": list_annot(list_annot(atom(8), 1), var("x"))},
        input_locations={"Rs": "HDD"},
        stats={"x": float(runs)},
        output_location="HDD",
    )

    print(f"\nderivation: {' → '.join(result.best.derivation)}")
    program = result.best.program
    assert isinstance(program, App) and isinstance(program.fn, TreeFold)
    print(f"winner: {pretty(program)}")
    print(f"fan-in: {program.fn.arity}-way merge")
    print(f"tuned buffers: {result.best.tuned.values}")
    print(
        f"\nestimated cost: insertion sort {result.spec_cost:.3g}s → "
        f"merge-sort {result.opt_cost:.3g}s "
        f"({result.speedup:.3g}× better)"
    )

    # Show the runner actually sorts.
    data = make_singleton_runs(50, 1000, seed=7)
    out = evaluate(result.best.executable(), {"Rs": data})
    assert out == sorted(x for [x] in data)
    print(f"\nsanity: 50 random records sort correctly → {out[:10]}…")

    # The paper's analysis: fewer, wider merge levels trade transfers
    # against seeks.  Show the estimated cost per fan-in.
    print("\ncost by fan-in (same buffers budget):")
    for candidate in result.top:
        prog = candidate.program
        if isinstance(prog, App) and isinstance(prog.fn, TreeFold):
            print(
                f"  treeFold[{prog.fn.arity:>2}]  "
                f"estimated {candidate.cost:,.0f}s  "
                f"(steps: {', '.join(candidate.derivation)})"
            )


if __name__ == "__main__":
    main()
