#!/usr/bin/env python3
"""The §7.2 showcase: from insertion sort to External Merge-Sort.

The specification is the one-liner ``foldL([], unfoldR(mrg))`` applied to
a list of singleton lists — an insertion sort that moves Θ(n²) bytes.
OCAS discovers, purely by cost-guided search:

    fldL-to-trfld      foldL → treeFold[2]          (associativity)
    inc-branching ×k   treeFold[2] → treeFold[2^k]  (wider merges)
    apply-block        bin/bout-buffered run I/O

…which is the 2^k-way External Merge-Sort, with the fan-in chosen by the
non-linear optimizer from the seek-time/bandwidth ratio of the disk.

Run:  python examples/external_sort_derivation.py
"""

from repro.api import Session
from repro.ocal import App, TreeFold, evaluate, pretty
from repro.workloads import make_singleton_runs


def main() -> None:
    session = Session()
    job = session.synthesize("external-sort", scale="table1")
    print(f"specification: {pretty(job.spec)}")
    print(f"\nderivation: {' → '.join(job.derivation)}")

    program = job.program
    assert isinstance(program, App) and isinstance(program.fn, TreeFold)
    print(f"winner: {pretty(job.winner)}")
    print(f"fan-in: {program.fn.arity}-way merge")
    print(f"tuned buffers: {job.plan.parameter_values}")
    print(
        f"\nestimated cost: insertion sort {job.spec_cost:.3g}s → "
        f"merge-sort {job.opt_cost:.3g}s "
        f"({job.speedup:.3g}× better)"
    )

    # Show the runner actually sorts.
    data = make_singleton_runs(50, 1000, seed=7)
    out = evaluate(program, {"Rs": data})
    assert out == sorted(x for [x] in data)
    print(f"\nsanity: 50 random records sort correctly → {out[:10]}…")

    # The paper's analysis: fewer, wider merge levels trade transfers
    # against seeks.  Show the estimated cost per fan-in — the chosen
    # winner first, then the dominated candidates the job kept.
    print("\ncost by fan-in (same buffers budget):")
    ranked = [(job.winner, job.opt_cost, job.derivation)] + [
        (alt.program, alt.cost, alt.derivation)
        for alt in job.alternatives
    ]
    for prog, cost, derivation in ranked:
        if isinstance(prog, App) and isinstance(prog.fn, TreeFold):
            print(
                f"  treeFold[{prog.fn.arity:>2}]  "
                f"estimated {cost:,.0f}s  "
                f"(steps: {', '.join(derivation)})"
            )


if __name__ == "__main__":
    main()
