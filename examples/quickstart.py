#!/usr/bin/env python3
"""Quickstart: synthesize a Block Nested Loops Join from a naive spec.

This is Example 1 of the paper end to end:

1. write the memory-hierarchy-oblivious join (two nested for-loops);
2. describe the hardware (a hard disk under 8 MiB of buffers);
3. let OCAS search the rewrite space, cost every candidate and tune the
   block sizes;
4. inspect the winner, run it on the simulated machine, and emit C code.

Run:  python examples/quickstart.py
"""

from repro.bench.table1 import JOIN_TUPLE
from repro.codegen import compile_candidate, generate_c
from repro.cost import atom, list_annot, tuple_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.ocal import evaluate, pretty_block
from repro.runtime import ExecutionConfig, InputSpec
from repro.rules import default_rules
from repro.search import Synthesizer
from repro.symbolic import var
from repro.workloads import naive_join_spec


def main() -> None:
    # 1. The naive specification: for (x ← R) for (y ← S) if … then [⟨x,y⟩]
    spec = naive_join_spec()
    print("specification:")
    print(pretty_block(spec), "\n")

    # 2. The machine: 1 TB hard disk (15 ms seeks, 30 MB/s) under 8 MiB
    #    of main-memory buffers (Figure 7's parameters).
    hierarchy = hdd_ram_hierarchy(8 * MB)

    # 3. Synthesize.  R is 1 GiB, S is 32 MiB, 512-byte tuples.
    x = (1024 * MB) // JOIN_TUPLE
    y = (32 * MB) // JOIN_TUPLE
    synthesizer = Synthesizer(
        hierarchy=hierarchy,
        rules=[r for r in default_rules() if r.name != "hash-part"],
        max_depth=5,
        max_programs=600,
    )
    result = synthesizer.synthesize(
        spec=spec,
        input_annots={
            "R": list_annot(tuple_annot(atom(8), atom(JOIN_TUPLE - 8)), var("x")),
            "S": list_annot(tuple_annot(atom(8), atom(JOIN_TUPLE - 8)), var("y")),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        stats={"x": float(x), "y": float(y)},
    )
    print(f"search space: {result.search_space} programs, "
          f"{result.runtime:.1f}s of synthesis")
    print(f"estimated cost: naive {result.spec_cost:.3g}s → "
          f"synthesized {result.opt_cost:.3g}s "
          f"({result.speedup:.2g}× better)")
    print(f"derivation: {' → '.join(result.best.derivation)}")
    print(f"tuned parameters: {result.best.tuned.values}\n")
    print("synthesized program (a Block Nested Loops Join):")
    print(pretty_block(result.best.program), "\n")

    # 4a. Sanity: the winner computes the same join on concrete data.
    R = [(i % 4, i) for i in range(8)]
    S = [(i % 4, -i) for i in range(6)]
    sample = evaluate(result.best.executable(), {"R": R, "S": S})
    print(f"sample run on 8×6 tuples: {len(sample)} matches\n")

    # 4b. Simulated "actual" execution at full scale.
    plan = compile_candidate(result.best)
    config = ExecutionConfig(
        hierarchy=hierarchy,
        input_locations={"R": "HDD", "S": "HDD"},
        cond_probability=1.0 / x,
        output_card_override=float(y),
    )
    measured = plan.execute(
        config,
        {"R": InputSpec(x, JOIN_TUPLE), "S": InputSpec(y, JOIN_TUPLE)},
    )
    print(f"simulated execution: {measured.summary()}")
    print(measured.stats.report(), "\n")

    # 4c. Generated C (the artifact the paper inspects by hand).
    code = generate_c(
        result.best.executable(),
        inputs=["R", "S"],
        elem_bytes={"R": JOIN_TUPLE, "S": JOIN_TUPLE},
    )
    print("generated C (first 30 lines):")
    print("\n".join(code.splitlines()[:30]))


if __name__ == "__main__":
    main()
