#!/usr/bin/env python3
"""Quickstart: the declarative front door, end to end.

This is Example 1 of the paper through the Session/Job API:

1. pick the naive join workload from the central registry (or bring
   your own spec — see ``adaptive_hierarchy.py``);
2. ``session.synthesize`` searches the rewrite space, costs every
   candidate, and tunes the block sizes — returning a lazy ``Job``;
3. inspect the derivation, run the winner on the simulated machine;
4. save the tuned plan as JSON, reload it, and re-execute — no second
   search — then emit C code for the same program.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro.api import Job, Session
from repro.bench.table1 import JOIN_TUPLE
from repro.codegen import generate_c
from repro.ocal import evaluate, pretty_block


def main() -> None:
    # 1. One front door.  The registry knows the workload's naive spec,
    #    input schema, hierarchy, and scales ("table1" = the paper's
    #    1 GiB ⋈ 32 MiB join under 8 MiB of buffers).
    session = Session()
    workload = session.registry.get("bnl-join")
    print(f"workload: {workload.name} — {workload.description}")
    spec = workload.experiment("table1").spec
    print("specification:")
    print(pretty_block(spec), "\n")

    # 2. Synthesize.  Search + costing + tuning happen here; nothing
    #    executes until job.run().
    job = session.synthesize("bnl-join", scale="table1")
    print(job.explain(), "\n")

    # 3a. Sanity: the winner computes the same join on concrete data.
    R = [(i % 4, i) for i in range(8)]
    S = [(i % 4, -i) for i in range(6)]
    sample = evaluate(job.program, {"R": R, "S": S})
    print(f"sample run on 8x6 tuples: {len(sample)} matches\n")

    # 3b. Simulated "actual" execution at full scale.
    result = job.run()  # the session's default backend: the simulator
    print(f"simulated execution: {result.execution.summary()}")
    print(result.execution.stats.report(), "\n")

    # 4a. Ship the plan: serialize, reload, re-execute — the loaded job
    #     carries zero search statistics because nothing is re-searched.
    with tempfile.TemporaryDirectory() as tmp:
        path = job.save(os.path.join(tmp, "bnl-join.plan.json"))
        loaded = Job.load(path)
        replay = loaded.run()
        print(
            f"replayed from {os.path.basename(path)}: "
            f"elapsed={replay.execution.elapsed:.4g}s "
            f"(search space recorded: {loaded.search.space})\n"
        )

    # 4b. Generated C (the artifact the paper inspects by hand).
    code = generate_c(
        job.program,
        inputs=["R", "S"],
        elem_bytes={"R": JOIN_TUPLE, "S": JOIN_TUPLE},
    )
    print("generated C (first 30 lines):")
    print("\n".join(code.splitlines()[:30]))


if __name__ == "__main__":
    main()
