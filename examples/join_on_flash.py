#!/usr/bin/env python3
"""Specializing the same join for three output devices.

The paper's write-out study (Table 1 rows 4–6): a relational product
whose result is written (a) back to the input disk, (b) to a second hard
disk, (c) to a flash drive.  One spec, three hierarchies — OCAS adapts
the cost model and the tuned parameters, and the simulator confirms the
ordering:

    same disk  ≫  second disk  >  flash

because write-back interferes with sequential reading, while flash pays
erases instead of seeks and streams at 120 MB/s.

Run:  python examples/join_on_flash.py
"""

from repro.bench.harness import format_table, run_experiment
from repro.bench.table1 import (
    bnl_writeout_flash,
    bnl_writeout_other_hdd,
    bnl_writeout_same_hdd,
)


def main() -> None:
    rows = []
    for factory in (
        bnl_writeout_same_hdd,
        bnl_writeout_other_hdd,
        bnl_writeout_flash,
    ):
        experiment = factory()
        print(f"synthesizing for: {experiment.name} …", flush=True)
        rows.append(run_experiment(experiment))

    print()
    print(format_table(rows))
    print()

    same, other, flash = rows
    print(
        f"second disk vs same disk: estimated "
        f"{same.opt_cost / other.opt_cost:.2f}× faster, measured "
        f"{same.actual / other.actual:.2f}× faster"
    )
    print(
        f"flash vs second disk:     estimated "
        f"{other.opt_cost / flash.opt_cost:.2f}× faster, measured "
        f"{other.actual / flash.actual:.2f}× faster"
    )
    print(
        "\nNote the erase accounting: on flash, InitCom events are not "
        "seeks but one block erase per write sequence (maxSeqW = 256K)."
    )


if __name__ == "__main__":
    main()
