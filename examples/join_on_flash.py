#!/usr/bin/env python3
"""Specializing the same join for three output devices.

The paper's write-out study (Table 1 rows 4–6): a relational product
whose result is written (a) back to the input disk, (b) to a second hard
disk, (c) to a flash drive.  One spec, three hierarchies — OCAS adapts
the cost model and the tuned parameters, and the simulator confirms the
ordering:

    same disk  ≫  second disk  >  flash

because write-back interferes with sequential reading, while flash pays
erases instead of seeks and streams at 120 MB/s.

The three workloads are one ``Session.synthesize_all`` batch over the
registry (deterministic ordering, shared cost memos).

Run:  python examples/join_on_flash.py
"""

from repro.api import Session, format_results

WORKLOADS = (
    "product-writeout-hdd",
    "product-writeout-hdd2",
    "product-writeout-flash",
)


def main() -> None:
    session = Session()
    print(f"synthesizing {len(WORKLOADS)} write-out variants ...", flush=True)
    jobs = session.synthesize_all(WORKLOADS, scale="table1")
    results = [job.run() for job in jobs]

    print()
    print(format_results(results))
    print()

    same, other, flash = results
    print(
        f"second disk vs same disk: estimated "
        f"{same.job.opt_cost / other.job.opt_cost:.2f}x faster, measured "
        f"{same.elapsed / other.elapsed:.2f}x faster"
    )
    print(
        f"flash vs second disk:     estimated "
        f"{other.job.opt_cost / flash.job.opt_cost:.2f}x faster, measured "
        f"{other.elapsed / flash.elapsed:.2f}x faster"
    )
    print(
        "\nNote the erase accounting: on flash, InitCom events are not "
        "seeks but one block erase per write sequence (maxSeqW = 256K)."
    )


if __name__ == "__main__":
    main()
