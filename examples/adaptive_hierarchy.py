#!/usr/bin/env python3
"""OCAS as an installation-time adapter: one spec, changing machines.

"Because OCAS operates automatically, it is possible to deploy it even in
environments where the system configuration changes dynamically, such as
cloud infrastructures."  This example re-synthesizes the same naive join
while the machine changes under it:

* the buffer pool shrinks from 64 MiB to 1 MiB — watch the chosen block
  sizes shrink and the algorithm flip from BNL to GRACE hash join when
  the inner relation stops fitting;
* a CPU cache level appears — watch the plan grow a tiling level.

It also shows the Session API's ad-hoc path: you are not limited to the
registry — ``session.synthesize`` accepts a hand-built ``Experiment``
(your own spec, annotations, and hierarchy).

Run:  python examples/adaptive_hierarchy.py
"""

from repro.api import Session
from repro.bench.harness import Experiment
from repro.bench.table1 import JOIN_TUPLE
from repro.cost import atom, list_annot, tuple_annot
from repro.hierarchy import MB, hdd_ram_cache_hierarchy, hdd_ram_hierarchy
from repro.ocal import pretty
from repro.symbolic import var
from repro.workloads import naive_join_spec


def join_experiment(hierarchy, x, y, **options) -> Experiment:
    """An ad-hoc Experiment: the naive join on a custom machine."""
    defaults = dict(max_depth=5, max_programs=500)
    defaults.update(options)
    return Experiment(
        name="adaptive-join",
        spec=naive_join_spec(),
        hierarchy=hierarchy,
        input_annots={
            "R": list_annot(
                tuple_annot(atom(8), atom(JOIN_TUPLE - 8)), var("x")
            ),
            "S": list_annot(
                tuple_annot(atom(8), atom(JOIN_TUPLE - 8)), var("y")
            ),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        stats={"x": float(x), "y": float(y)},
        inputs={},
        **defaults,
    )


def main() -> None:
    session = Session()
    x = (256 * MB) // JOIN_TUPLE
    y = (16 * MB) // JOIN_TUPLE

    print("=== shrinking buffer pool ===")
    for ram_mb in (64, 8, 1):
        job = session.synthesize(
            join_experiment(hdd_ram_hierarchy(ram_mb * MB), x, y)
        )
        algorithm = (
            "GRACE hash join"
            if "hash-part" in job.derivation
            else "Block Nested Loops"
        )
        print(
            f"RAM {ram_mb:>3} MiB → {algorithm:<22} "
            f"est. {job.opt_cost:9.2f}s   "
            f"params {job.plan.parameter_values}"
        )

    print("\n=== adding a CPU cache level ===")
    flat = session.synthesize(join_experiment(hdd_ram_hierarchy(8 * MB), x, y))
    cached = session.synthesize(
        join_experiment(
            hdd_ram_cache_hierarchy(8 * MB),
            x,
            y,
            max_depth=6,
            max_programs=1200,
        )
    )
    print(f"2-level winner: {pretty(flat.winner)[:100]}…")
    print(f"3-level winner: {pretty(cached.winner)[:100]}…")
    depth_flat = len(flat.derivation)
    depth_cached = len(cached.derivation)
    print(
        f"\nderivation length grew {depth_flat} → {depth_cached}: the "
        "extra steps are the cache-tiling loops the new level calls for."
    )


if __name__ == "__main__":
    main()
