"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs are unavailable; ``pip install -e .
--no-use-pep517`` goes through this file instead.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
