"""The §7.2 cache experiment: tiling cuts data-cache misses by ~98%.

The paper extends the hierarchy with a CPU cache; OCAS tiles the BNL
join's in-memory loops, and ``perf`` reports 98.2% fewer data cache
misses.  We replay both kernels' access patterns through the LRU cache
simulator.
"""

import pytest

from repro.runtime import run_cache_experiment


@pytest.fixture(scope="module")
def result():
    return run_cache_experiment()


def test_cache_miss_reduction(benchmark, result, report):
    benchmark.pedantic(
        lambda: run_cache_experiment(
            outer_elems=1024, inner_elems=2048, elem_bytes=8,
            cache_size=32 * 2**10, line_size=512,
        ),
        rounds=1,
        iterations=1,
    )
    report.append(
        f"cache misses: untiled={result.untiled_misses} "
        f"tiled={result.tiled_misses} "
        f"reduction={100 * result.miss_reduction:.1f}% (paper: 98.2%)"
    )
    # Paper: 98.2% reduction; anything ≥ 90% reproduces the claim's shape.
    assert result.miss_reduction >= 0.90


def test_untiled_streams_through_the_cache(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The untiled kernel misses on (almost) every inner line it touches.
    assert result.untiled_misses > result.tiled_misses * 10


def test_access_counts_match(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Tiling reorders accesses but barely changes how many there are.
    assert result.tiled_accesses == pytest.approx(
        result.untiled_accesses, rel=0.01
    )
