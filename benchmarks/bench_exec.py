"""Compiled execution vs the interpreted FileBackend, measured.

The §12 tentpole claim, quantified: lowering a tuned plan once into
flat Python (the ``compiled`` backend) beats the AST-walking
``FileBackend`` on real measured wall clock while staying
*observationally identical* — bit-identical output bags and identical
per-device byte/seek counters (both asserted here for every workload,
not sampled).

Persisted to ``BENCH_exec.json``: per-workload file/compiled wall
clocks (best of ``repeat`` runs, so first-run compile time is amortized
out the same way OS page-cache warmth is), speedups, counters, and the
equality verdicts.

Gates:

* smoke (``REPRO_EXEC_BENCH_SMOKE=1``, the ``exec-bench-smoke`` CI
  job) — three workloads; compiled must not be slower in aggregate;
* full — all ten validation workloads; compiled must win on ≥ 8.
"""

import json
import os
import pathlib
import shutil

import pytest

from repro.api import Session
from repro.bench.validation import DEFAULT_WORKLOADS
from repro.conformance.oracle import output_bag
from repro.runtime import CompiledBackend, FileBackend

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_exec.json"
)

SMOKE = os.environ.get("REPRO_EXEC_BENCH_SMOKE", "0") == "1"

SMOKE_WORKLOADS = ("bnl-join", "external-sort", "aggregation")
WORKLOADS = SMOKE_WORKLOADS if SMOKE else DEFAULT_WORKLOADS
REPEAT = 2 if SMOKE else 5

COUNTERS = (
    "reads", "writes", "bytes_read", "bytes_written", "seeks", "erases"
)


@pytest.fixture(scope="module")
def results():
    """Shared result dict, dumped to BENCH_exec.json by the last test."""
    return {
        "description": (
            "Generated-Python compiled backend vs the interpreted "
            "FileBackend on the validation workloads: measured wall "
            "clock, with bag and counter identity asserted."
        ),
        "smoke_mode": SMOKE,
        "repeat": REPEAT,
        "workloads": {},
    }


@pytest.fixture(scope="module")
def session():
    return Session()


def _run_once(backend_cls, job, workdir):
    """One execution in a throwaway workdir; returns (result, bag, wall).

    The raw captured output is reduced to its bag and the workdir is
    removed *immediately* — letting run directories (and megabytes of
    product write-out) pile up across attempts builds dirty-page
    writeback pressure that slows every later run and drowns the
    backend difference in filesystem noise.
    """
    workdir.mkdir(parents=True)
    try:
        backend = backend_cls(
            workdir=str(workdir), seed=7, capture_output=True
        )
        result = backend.run(job.program, job.inputs, job.config)
        return result, output_bag(backend.last_output), result.wall_seconds
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _best_runs(job, workdir, repeat):
    """Interleaved best-of-N for both backends.

    Alternating file/compiled attempts — and flipping which side goes
    first each round — spreads machine drift (page cache, background
    load) evenly over both sides instead of letting it bias whichever
    backend ran second.
    """
    pair = [("file", FileBackend), ("compiled", CompiledBackend)]
    best = {}
    for attempt in range(repeat):
        for tag, backend_cls in pair if attempt % 2 == 0 else pair[::-1]:
            run = _run_once(backend_cls, job, workdir / f"{tag}{attempt}")
            if tag not in best or run[2] < best[tag][2]:
                best[tag] = run
    return best["file"], best["compiled"]


def _counters(result) -> dict:
    return {
        device: {name: getattr(stats, name) for name in COUNTERS}
        for device, stats in sorted(result.stats.devices.items())
    }


@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_compiled_vs_file(results, session, name, tmp_path):
    job = session.synthesize(name, scale="validation")
    file_best, comp_best = _best_runs(job, tmp_path, REPEAT)
    file_result, file_bag, file_wall = file_best
    comp_result, comp_bag, comp_wall = comp_best

    # Observational identity is a hard gate on every workload.
    bags_equal = comp_bag == file_bag
    counters_equal = _counters(comp_result) == _counters(file_result)
    assert bags_equal, f"{name}: compiled output bag diverged"
    assert counters_equal, f"{name}: measured I/O counters diverged"
    assert comp_result.elapsed == file_result.elapsed

    results["workloads"][name] = {
        "derivation": list(job.derivation),
        "file_wall": file_wall,
        "compiled_wall": comp_wall,
        "speedup": round(file_wall / comp_wall, 3) if comp_wall else None,
        "output_card": file_result.output_card,
        "bags_equal": bags_equal,
        "counters_equal": counters_equal,
        "devices": _counters(file_result),
    }


def test_record_bench_exec_json(results, report):
    """Aggregate gate + artifact; runs last within this module."""
    rows = results["workloads"]
    assert len(rows) == len(WORKLOADS), "per-workload benches did not run"
    wins = sum(
        1 for row in rows.values() if row["compiled_wall"] < row["file_wall"]
    )
    file_total = sum(row["file_wall"] for row in rows.values())
    comp_total = sum(row["compiled_wall"] for row in rows.values())
    results["summary"] = {
        "workloads": len(rows),
        "compiled_wins": wins,
        "file_wall_total": file_total,
        "compiled_wall_total": comp_total,
        "aggregate_speedup": (
            round(file_total / comp_total, 3) if comp_total else None
        ),
    }
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")
    lines = [
        f"{name:<26} file {row['file_wall'] * 1e3:8.1f}ms  "
        f"compiled {row['compiled_wall'] * 1e3:8.1f}ms  "
        f"({row['speedup']:.2f}x)"
        for name, row in rows.items()
    ]
    report.append(
        "compiled execution vs FileBackend "
        f"({'smoke' if SMOKE else 'full'}, best of {REPEAT}):\n"
        + "\n".join(lines)
        + f"\naggregate: {results['summary']['aggregate_speedup']}x, "
        f"{wins}/{len(rows)} workloads faster"
    )
    if SMOKE:
        # Smoke gate: never slower in aggregate.
        assert comp_total <= file_total
    else:
        # Full gate: the acceptance criterion — faster on ≥ 8 of 10.
        assert wins >= 8, results["summary"]
