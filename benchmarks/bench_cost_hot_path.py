"""The costing fast lane, measured (ISSUE 5; DESIGN.md §11).

Three layers of measurement, persisted to ``BENCH_cost.json``:

* **evaluate micro** — raw symbolic evaluation: recursive
  ``Expr.evaluate`` vs the compiled flat evaluator on a real workload's
  tuned-cost expression;
* **tune micro** — one full penalty-optimizer run per lane on the
  blocked-join tuning problem (the synthesis inner loop); the CI smoke
  gate requires the compiled lane to win, the full gate ≥5×;
* **estimate micro** — whole-program estimation with and without the
  incremental subtree cache;
* **end-to-end** — full synthesis (``exhaustive-bfs`` and
  ``best-first``) of the three Table-1 join workloads per lane, with
  identical winners/derivations/costs asserted and a ≥3× aggregate
  wall-clock gate on the exhaustive rows.

Smoke mode (``REPRO_COST_BENCH_SMOKE=1``, used by the ``cost-bench-smoke``
CI job) runs the micro layers plus one end-to-end workload and only
gates "compiled is not slower"; the full run enforces the acceptance
ratios.  Lane switching uses the ``REPRO_COMPILED_COST`` escape hatch,
which is re-read per costing call.
"""

import json
import os
import pathlib
import time

import pytest

from repro.api import Session, default_registry
from repro.cost.cache import CostMemo
from repro.cost.estimator import CostEstimator, CostModel
from repro.optimizer.penalty import ParameterOptimizer
from repro.symbolic import compile_expr

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_cost.json"
)

SMOKE = os.environ.get("REPRO_COST_BENCH_SMOKE", "0") == "1"

#: Table-1 join rows — the workloads whose costing dominates synthesis.
JOIN_WORKLOADS = ("bnl-join", "bnl-with-cache", "grace-join")

REGISTRY = default_registry()


def _experiment(name: str):
    return REGISTRY.experiment(name, "table1")


def _flag(value: str):
    os.environ["REPRO_COMPILED_COST"] = value


@pytest.fixture(autouse=True)
def _restore_flag():
    yield
    os.environ.pop("REPRO_COMPILED_COST", None)


def _join_problem():
    """The blocked-join tuning problem (k1/k2 compete for the buffer)."""
    experiment = _experiment("bnl-join")
    model = CostModel(
        hierarchy=experiment.hierarchy,
        input_annots=experiment.input_annots,
        input_locations=experiment.input_locations,
        output_location=experiment.output_location,
        stats=experiment.stats,
    )
    from repro.ocal.builders import for_, sing, tup, v

    blocked = for_(
        "xB",
        v("R"),
        for_("yB", v("S"), sing(tup(v("xB"), v("yB"))), block_in="k2"),
        block_in="k1",
    )
    estimate = CostEstimator(model).estimate(blocked)
    return estimate, dict(experiment.stats)


def _time(thunk, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def results():
    """Shared result dict, dumped to BENCH_cost.json by the last test."""
    return {
        "description": (
            "Costing fast lane (compiled expressions + batched tuning + "
            "incremental re-estimation) vs the interpreted reference "
            "path (REPRO_COMPILED_COST=0)."
        ),
        "smoke_mode": SMOKE,
        "micro": {},
        "end_to_end": {},
    }


# ----------------------------------------------------------------------
# Micro: raw expression evaluation
# ----------------------------------------------------------------------
def test_micro_evaluate(results, report):
    estimate, stats = _join_problem()
    env = dict(stats)
    env.update({name: 64.0 for name in estimate.parameters})
    expr = estimate.total
    rounds = 200 if SMOKE else 2000

    def interpreted():
        for _ in range(rounds):
            expr.evaluate(env)

    _flag("1")
    compiled = compile_expr(expr)

    def fast():
        fn = compiled.fn
        for _ in range(rounds):
            fn(env)

    interpreted_s = _time(interpreted, 3)
    compiled_s = _time(fast, 3)
    assert compiled(env) == expr.evaluate(env)  # exact parity
    speedup = interpreted_s / compiled_s
    results["micro"]["evaluate"] = {
        "interpreted_us": round(1e6 * interpreted_s / rounds, 3),
        "compiled_us": round(1e6 * compiled_s / rounds, 3),
        "speedup": round(speedup, 2),
    }
    report.append(
        f"evaluate micro: interpreted {1e6 * interpreted_s / rounds:.2f}us "
        f"vs compiled {1e6 * compiled_s / rounds:.2f}us "
        f"({speedup:.1f}x)"
    )
    # Smoke gate: the compiled path must never be slower.
    assert speedup > 1.0
    if not SMOKE:
        assert speedup >= 3.0


# ----------------------------------------------------------------------
# Micro: one full parameter tune
# ----------------------------------------------------------------------
def test_micro_tune(results, report):
    estimate, stats = _join_problem()

    def tune():
        return ParameterOptimizer(
            cost=estimate.total,
            constraints=estimate.constraints,
            parameters=estimate.parameters,
            stats=stats,
            penalty_rounds=2,
        ).run()

    _flag("0")
    reference = tune()
    interpreted_s = _time(tune, 2 if SMOKE else 3)
    _flag("1")
    tune()  # warm the compile caches once
    fast = tune()
    compiled_s = _time(tune, 3 if SMOKE else 5)

    assert fast.values == reference.values
    assert fast.cost == reference.cost  # exact float equality
    assert fast.evaluations == reference.evaluations
    speedup = interpreted_s / compiled_s
    results["micro"]["tune"] = {
        "interpreted_ms": round(1e3 * interpreted_s, 3),
        "compiled_ms": round(1e3 * compiled_s, 3),
        "speedup": round(speedup, 2),
    }
    report.append(
        f"tune micro: interpreted {1e3 * interpreted_s:.1f}ms vs "
        f"compiled {1e3 * compiled_s:.1f}ms ({speedup:.1f}x)"
    )
    assert speedup > 1.0
    if not SMOKE:
        assert speedup >= 5.0


# ----------------------------------------------------------------------
# Micro: estimation with the incremental subtree cache
# ----------------------------------------------------------------------
def test_micro_estimate(results, report):
    experiment = _experiment("bnl-with-cache")
    model = CostModel(
        hierarchy=experiment.hierarchy,
        input_annots=experiment.input_annots,
        input_locations=experiment.input_locations,
        output_location=experiment.output_location,
        stats=experiment.stats,
    )
    spec = experiment.spec
    rounds = 20 if SMOKE else 100

    _flag("1")
    def cold():
        for _ in range(rounds):
            CostEstimator(model).estimate(spec)

    memo = CostMemo()
    CostEstimator(model, memo=memo).estimate(spec)  # warm the cache

    def warm():
        for _ in range(rounds):
            CostEstimator(model, memo=memo).estimate(spec)

    cold_s = _time(cold, 2)
    warm_s = _time(warm, 2)
    reference = CostEstimator(model).estimate(spec)
    cached = CostEstimator(model, memo=memo).estimate(spec)
    assert cached.total == reference.total
    assert cached.constraints == reference.constraints
    speedup = cold_s / warm_s
    results["micro"]["estimate"] = {
        "cold_ms": round(1e3 * cold_s / rounds, 4),
        "subtree_cached_ms": round(1e3 * warm_s / rounds, 4),
        "speedup": round(speedup, 2),
        "subtree_hit_rate": round(memo.stats.subtree_hit_rate, 4),
    }
    report.append(
        f"estimate micro: cold {1e3 * cold_s / rounds:.2f}ms vs "
        f"subtree-cached {1e3 * warm_s / rounds:.2f}ms ({speedup:.1f}x)"
    )
    assert speedup > 1.0


# ----------------------------------------------------------------------
# End-to-end: full synthesis per lane on the join workloads
# ----------------------------------------------------------------------
def _synthesize(name: str, strategy: str):
    """One front-door synthesis with a fresh session (cold memos)."""
    session = Session(strategy=strategy)
    started = time.perf_counter()
    job = session.synthesize(name, scale="table1")
    return job, time.perf_counter() - started


def test_end_to_end_join_workloads(results, report):
    workloads = JOIN_WORKLOADS[:1] if SMOKE else JOIN_WORKLOADS
    strategies = (
        ("exhaustive-bfs",) if SMOKE else ("exhaustive-bfs", "best-first")
    )
    rows = {}
    for name in workloads:
        rows[name] = {}
        for strategy in strategies:
            _flag("1")
            fast, fast_wall = _synthesize(name, strategy)
            _flag("0")
            slow, slow_wall = _synthesize(name, strategy)
            assert fast.winner == slow.winner, name
            assert fast.derivation == slow.derivation, name
            assert fast.opt_cost == slow.opt_cost, name  # exact
            subtree_lookups = (
                fast.search.subtree_hits + fast.search.subtree_misses
            )
            rows[name][strategy] = {
                "interpreted_wall_s": round(slow_wall, 4),
                "compiled_wall_s": round(fast_wall, 4),
                "speedup": round(slow_wall / fast_wall, 2),
                "candidates_costed": fast.search.costed,
                "subtree_hit_rate": round(
                    fast.search.subtree_hits / subtree_lookups, 4
                )
                if subtree_lookups
                else 0.0,
            }
    def _aggregate(wanted=None):
        interpreted = compiled = 0.0
        for per_workload in rows.values():
            for strategy, row in per_workload.items():
                if wanted is not None and strategy != wanted:
                    continue
                interpreted += row["interpreted_wall_s"]
                compiled += row["compiled_wall_s"]
        return {
            "interpreted_wall_s": round(interpreted, 4),
            "compiled_wall_s": round(compiled, 4),
            "speedup": round(interpreted / compiled, 2),
        }

    # The >=3x acceptance gate applies to the exhaustive rows — the
    # costing-bound configuration the ISSUE targets; the all-strategies
    # aggregate is recorded alongside for context.
    exhaustive = _aggregate("exhaustive-bfs")
    results["end_to_end"] = {
        "workloads": rows,
        "aggregate": exhaustive,
        "aggregate_all_strategies": _aggregate(),
    }
    report.append(
        "end-to-end join synthesis (exhaustive rows): interpreted "
        f"{exhaustive['interpreted_wall_s']:.2f}s vs compiled "
        f"{exhaustive['compiled_wall_s']:.2f}s "
        f"({exhaustive['speedup']:.2f}x)"
    )
    assert exhaustive["speedup"] > 1.0
    if not SMOKE:
        assert exhaustive["speedup"] >= 3.0


def test_record_bench_cost_json(results, report):
    """Persist the fast-lane numbers for future perf trajectories."""
    # Runs last within this module: earlier tests populated `results`.
    assert results["micro"], "micro benchmarks did not run"
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")
    report.append(
        "fast-lane summary: " + json.dumps(
            {
                "evaluate_x": results["micro"]["evaluate"]["speedup"],
                "tune_x": results["micro"]["tune"]["speedup"],
                "estimate_x": results["micro"]["estimate"]["speedup"],
                "end_to_end_x": results["end_to_end"]
                .get("aggregate", {})
                .get("speedup"),
            },
            indent=2,
        )
    )
