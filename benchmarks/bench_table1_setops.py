"""Table 1, rows 8–12: set and multiset operations.

The reproduced §7.3 claim about worst-case analysis: union estimates are
(nearly) exact because the worst case equals the actual output, while
difference is *over*estimated — the actual run is cheaper than predicted.
"""

import pytest

from repro.bench import format_table, run_experiment
from repro.bench.table1 import (
    multiset_diff_multiplicity,
    multiset_diff_sorted,
    multiset_union_multiplicity,
    multiset_union_sorted,
    set_union,
)


@pytest.fixture(scope="module")
def rows():
    return [
        run_experiment(factory())
        for factory in (
            set_union,
            multiset_union_sorted,
            multiset_union_multiplicity,
            multiset_diff_sorted,
            multiset_diff_multiplicity,
        )
    ]


@pytest.mark.table1
def test_setops_block(benchmark, rows, report):
    benchmark.pedantic(
        lambda: run_experiment(set_union()), rounds=1, iterations=1
    )
    report.append(format_table(rows))
    for row in rows:
        assert row.spec_cost > row.opt_cost * 10


@pytest.mark.table1
def test_union_estimates_track_actuals(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    union_rows = rows[:3]
    for row in union_rows:
        assert 0.4 <= row.act_over_opt <= 2.5, row.experiment.name


@pytest.mark.table1
def test_difference_is_overestimated(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    diff_rows = rows[3:]
    union_rows = rows[:3]
    # Diff runs finish faster relative to their estimates than unions do:
    # the worst case (nothing cancels) did not materialize.
    worst_union = max(r.act_over_opt for r in union_rows)
    for row in diff_rows:
        assert row.act_over_opt < worst_union, row.experiment.name
        assert row.act_over_opt < 1.1
