"""Table 1, rows 4–6: the write-out trio.

Reproduced orderings: writing to the input disk is the slowest (seek
interference), a second disk cuts the time by more than half, and flash
output is faster still thanks to its sequential write speed.
"""

import pytest

from repro.bench import format_table, run_experiment
from repro.bench.table1 import (
    bnl_writeout_flash,
    bnl_writeout_other_hdd,
    bnl_writeout_same_hdd,
)


@pytest.fixture(scope="module")
def rows():
    return {
        "same": run_experiment(bnl_writeout_same_hdd()),
        "other": run_experiment(bnl_writeout_other_hdd()),
        "flash": run_experiment(bnl_writeout_flash()),
    }


@pytest.mark.table1
def test_writeout_trio(benchmark, rows, report):
    benchmark.pedantic(
        lambda: run_experiment(bnl_writeout_same_hdd()),
        rounds=1,
        iterations=1,
    )
    report.append(
        format_table([rows["same"], rows["other"], rows["flash"]])
    )
    # Paper row 4 vs 5: a separate disk cuts estimated AND measured time.
    assert rows["other"].opt_cost < rows["same"].opt_cost
    assert rows["other"].actual < rows["same"].actual
    # Paper row 5 vs 6: flash output is faster than the second hard disk.
    assert rows["flash"].opt_cost < rows["other"].opt_cost
    assert rows["flash"].actual < rows["other"].actual


@pytest.mark.table1
def test_flash_erases_not_seeks(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The flash run's cost is carried by erases, not head movement.
    assert rows["flash"].actual < rows["same"].actual
