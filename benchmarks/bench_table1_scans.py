"""Table 1, rows 13–16: column-store reads, duplicate removal, aggregation.

I/O-bound scans: estimates should be close to measured times, and the
10-column read should cost about twice the 5-column read.
"""

import pytest

from repro.bench import format_table, run_experiment
from repro.bench.table1 import (
    aggregation,
    column_store_read_10,
    column_store_read_5,
    duplicate_removal,
)


@pytest.fixture(scope="module")
def rows():
    return {
        "cols5": run_experiment(column_store_read_5()),
        "cols10": run_experiment(column_store_read_10()),
        "dedup": run_experiment(duplicate_removal()),
        "agg": run_experiment(aggregation()),
    }


@pytest.mark.table1
def test_scan_block(benchmark, rows, report):
    benchmark.pedantic(
        lambda: run_experiment(aggregation()), rounds=1, iterations=1
    )
    report.append(format_table(list(rows.values())))


@pytest.mark.table1
def test_columns_scale_linearly(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Twice the columns ≈ twice the time; slightly above 2× because ten
    # interleaved streams split the buffer pool and seek more often.
    ratio = rows["cols10"].actual / rows["cols5"].actual
    assert 1.6 <= ratio <= 2.6
    est_ratio = rows["cols10"].opt_cost / rows["cols5"].opt_cost
    assert 1.6 <= est_ratio <= 2.6


@pytest.mark.table1
def test_aggregation_estimate_is_accurate(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The CPU-light task: measured within a whisker of the estimate.
    assert 0.7 <= rows["agg"].act_over_opt <= 1.5


@pytest.mark.table1
def test_scans_gain_over_specs(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in rows.values():
        assert row.spec_cost > row.opt_cost * 10, row.experiment.name
