"""Table 1, rows 1–3: BNL join, cache-conscious BNL, GRACE hash join."""

import pytest

from repro.bench import format_table, run_experiment
from repro.bench.table1 import (
    bnl_no_writeout,
    bnl_with_cache,
    grace_hash_join,
)


@pytest.mark.table1
def test_bnl_no_writeout(benchmark, report):
    row = benchmark.pedantic(
        lambda: run_experiment(bnl_no_writeout()), rounds=1, iterations=1
    )
    report.append(format_table([row]))
    # Spec ≫ Opt; measured time tracks the estimate within a small factor.
    assert row.spec_cost > row.opt_cost * 1e3
    assert 0.5 <= row.act_over_opt <= 4.0
    assert "apply-block" in row.derivation


@pytest.mark.table1
def test_bnl_with_cache(benchmark, report):
    row = benchmark.pedantic(
        lambda: run_experiment(bnl_with_cache()), rounds=1, iterations=1
    )
    report.append(format_table([row]))
    assert row.spec_cost > row.opt_cost * 1e3


@pytest.mark.table1
def test_grace_hash_join(benchmark, report):
    bnl_row = run_experiment(bnl_no_writeout())
    row = benchmark.pedantic(
        lambda: run_experiment(grace_hash_join()), rounds=1, iterations=1
    )
    report.append(format_table([bnl_row, row]))
    assert "hash-part" in row.derivation
    # The paper's comparison: the hash join beats the BNL join.
    assert row.actual < bnl_row.actual
    assert row.opt_cost < bnl_row.opt_cost
