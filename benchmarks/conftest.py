"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table/figure artifact of the paper and
records a paper-vs-measured report; ``pytest-benchmark`` times the
synthesize-and-simulate pipeline itself (the §7.4 "Running Time of OCAS"
measurement comes for free from these timings).

The regenerated artifacts (Table-1 rows, Figure-8 panels, cache-miss
counts, ablation tables) are written to ``bench_artifacts.txt`` next to
this file and echoed to the terminal at session end.
"""

import pathlib

import pytest

ARTIFACTS_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "bench_artifacts.txt"
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table1: regenerates a block of Table 1 rows"
    )
    config.addinivalue_line(
        "markers", "figure8: regenerates a Figure 8 panel"
    )


@pytest.fixture(scope="session")
def report(request):
    """Collects printed artifacts; persisted at session end."""
    lines: list[str] = []
    yield lines
    if not lines:
        return
    text = "\n\n".join(lines) + "\n"
    ARTIFACTS_PATH.write_text(
        "Regenerated paper artifacts (see EXPERIMENTS.md for the "
        "paper-vs-measured discussion)\n"
        + "=" * 78 + "\n\n" + text
    )
    terminal = request.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_sep("=", "paper artifacts regenerated")
        for block in lines:
            terminal.write_line(block)
        terminal.write_line(f"(also written to {ARTIFACTS_PATH})")
