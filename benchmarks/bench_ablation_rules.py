"""Ablation: what each transformation rule buys.

DESIGN.md's rule library is the paper's §6; this bench disables one rule
at a time and re-synthesizes the join and sort workloads, measuring the
estimated cost of the best program found without it.  The reproduced
design claims:

* **apply-block is the workhorse** — without it nothing beats the naive
  cost by more than trivial factors;
* **hash-part** is what makes the join beat BNL when the inner relation
  exceeds the buffer pool;
* **fldL-to-trfld / inc-branching** carry the sort derivation: without
  either the sort stays quadratic;
* **seq-ac / order-inputs / swap-iter** are refinements: useful, not
  load-bearing.
"""

import pytest

from repro.cost import atom, list_annot, tuple_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.rules import default_rules
from repro.search import Synthesizer
from repro.symbolic import var
from repro.workloads import insertion_sort_spec, naive_join_spec

RULE_NAMES = [rule.name for rule in default_rules()]


def synthesize_join(excluded: str | None):
    rules = [r for r in default_rules() if r.name != excluded]
    synth = Synthesizer(
        hierarchy=hdd_ram_hierarchy(8 * MB),
        rules=rules,
        max_depth=4,
        max_programs=300,
    )
    return synth.synthesize(
        spec=naive_join_spec(),
        input_annots={
            "R": list_annot(tuple_annot(atom(8), atom(504)), var("x")),
            "S": list_annot(tuple_annot(atom(8), atom(504)), var("y")),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        stats={"x": 2.0**21, "y": 2.0**16},
    )


def synthesize_sort(excluded: str | None):
    rules = [r for r in default_rules() if r.name != excluded]
    synth = Synthesizer(
        hierarchy=hdd_ram_hierarchy(8 * MB),
        rules=rules,
        max_depth=6,
        max_programs=200,
        max_treefold_arity=16,
    )
    return synth.synthesize(
        spec=insertion_sort_spec(),
        input_annots={"Rs": list_annot(list_annot(atom(8), 1), var("x"))},
        input_locations={"Rs": "HDD"},
        stats={"x": 2.0**26},
        output_location="HDD",
    )


@pytest.fixture(scope="module")
def join_ablation():
    return {
        name: synthesize_join(name).opt_cost
        for name in [None] + RULE_NAMES
    }


@pytest.fixture(scope="module")
def sort_ablation():
    return {
        name: synthesize_sort(name).opt_cost
        for name in [None, "fldL-to-trfld", "inc-branching", "apply-block"]
    }


def test_join_rule_ablation(benchmark, join_ablation, report):
    benchmark.pedantic(
        lambda: synthesize_join("seq-ac"), rounds=1, iterations=1
    )
    lines = ["rule ablation (join): best estimated cost without each rule"]
    for name, cost in join_ablation.items():
        label = name or "(all rules)"
        lines.append(f"  {label:<16} {cost:12.4g}s")
    report.append("\n".join(lines))
    full = join_ablation[None]
    # Removing any single rule never *improves* the best cost.
    for name in RULE_NAMES:
        assert join_ablation[name] >= full * 0.999, name


def test_apply_block_is_load_bearing(benchmark, join_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Without blocking, the best program is orders of magnitude worse.
    assert join_ablation["apply-block"] > join_ablation[None] * 100


def test_hash_part_wins_the_join(benchmark, join_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Disabling hash-part forces BNL, which costs measurably more here.
    assert join_ablation["hash-part"] > join_ablation[None] * 1.2


def test_sort_needs_the_folding_rules(benchmark, sort_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = sort_ablation[None]
    # Without either folding-pattern rule the sort stays quadratic.
    assert sort_ablation["fldL-to-trfld"] > full * 1e3
    assert sort_ablation["inc-branching"] >= full * 0.999
    # Without blocking, every merge does per-element I/O.
    assert sort_ablation["apply-block"] > full * 100
