"""Intra-search and intra-execution parallelism, measured (DESIGN.md §13).

Two levers behind one worker-pool utility, quantified against their
serial baselines with observational identity asserted — bit-identical
winners/derivations for the search lever, equal bags, priced costs and
per-device counters for the execution lever:

* **parallel frontier costing** — the exhaustive-BFS join search with
  ``Synthesizer(workers=N)``, where each generation's candidate batch
  is costed on a process pool (cold session each run, so the memo-warm
  fast path cannot hide the fan-out);
* **partition-parallel execution** — the hash-partition join on the
  measuring FileBackend with ``workers=N``, where bucket pipelines run
  on the pool and the parent replays their event logs.

Persisted to ``BENCH_parallel.json``: serial/parallel wall clocks (best
of ``repeat``), speedups, the identity verdicts, and the box's CPU
count.

Gates (identity is always a hard gate; *speed* gates depend on cores,
because a single-core box cannot show a speedup):

* smoke (``REPRO_PARALLEL_BENCH_SMOKE=1``, the ``parallel-bench-smoke``
  CI job) — with ≥ 2 cores, parallel must not be slower than serial in
  aggregate by more than 25%; on a single core only identity is gated;
* full — with ≥ 4 cores, each lever must reach the ≥ 1.5× acceptance
  speedup at 4 workers.
"""

import json
import os
import pathlib
import shutil
import time

import pytest

from repro.api import Session
from repro.conformance.oracle import output_bag
from repro.runtime import FileBackend

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_parallel.json"
)

SMOKE = os.environ.get("REPRO_PARALLEL_BENCH_SMOKE", "0") == "1"
REPEAT = 2 if SMOKE else 3
WORKERS = 2 if SMOKE else 4

SEARCH_WORKLOAD = "grace-join"
EXEC_WORKLOAD = "grace-join"

COUNTERS = (
    "reads", "writes", "bytes_read", "bytes_written", "seeks", "erases"
)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def results():
    """Shared result dict, dumped to BENCH_parallel.json by the last test."""
    return {
        "description": (
            "Parallel frontier costing and partition-parallel execution "
            "vs their serial baselines: measured wall clock, with "
            "winner/bag/counter identity asserted."
        ),
        "smoke_mode": SMOKE,
        "repeat": REPEAT,
        "workers": WORKERS,
        "cpus": _cpus(),
        "levers": {},
    }


def _synthesize_cold(workers: int):
    """One cold-session exhaustive synthesis; returns (job, wall)."""
    session = Session(workers=workers)
    started = time.perf_counter()
    job = session.synthesize(
        SEARCH_WORKLOAD, scale="table1", strategy="exhaustive-bfs"
    )
    return job, time.perf_counter() - started


def _execute(job, workers: int, workdir):
    """One FileBackend run in a throwaway workdir; (result, bag, wall)."""
    workdir.mkdir(parents=True)
    try:
        backend = FileBackend(
            workdir=str(workdir), seed=7, capture_output=True,
            workers=workers,
        )
        result = backend.run(job.program, job.inputs, job.config)
        return result, output_bag(backend.last_output), result.wall_seconds
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _counters(result) -> dict:
    return {
        device: {name: getattr(stats, name) for name in COUNTERS}
        for device, stats in sorted(result.stats.devices.items())
    }


def test_parallel_frontier_costing(results):
    serial_best = parallel_best = None
    for attempt in range(REPEAT):
        order = ((1,), (WORKERS,)) if attempt % 2 == 0 else ((WORKERS,), (1,))
        for (workers,) in order:
            job, wall = _synthesize_cold(workers)
            if workers == 1:
                if serial_best is None or wall < serial_best[1]:
                    serial_best = (job, wall)
            elif parallel_best is None or wall < parallel_best[1]:
                parallel_best = (job, wall)
    serial_job, serial_wall = serial_best
    parallel_job, parallel_wall = parallel_best

    # Identity gates: the parallel search is observationally serial.
    assert parallel_job.winner is serial_job.winner
    assert parallel_job.derivation == serial_job.derivation
    assert parallel_job.opt_cost == serial_job.opt_cost
    assert parallel_job.search.space == serial_job.search.space
    assert parallel_job.search.costed == serial_job.search.costed

    results["levers"]["search"] = {
        "workload": SEARCH_WORKLOAD,
        "strategy": "exhaustive-bfs",
        "search_space": serial_job.search.space,
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
        "speedup": (
            round(serial_wall / parallel_wall, 3) if parallel_wall else None
        ),
        "winner_identical": True,
    }


def test_partition_parallel_execution(results, tmp_path):
    job = Session().synthesize(EXEC_WORKLOAD, scale="validation")
    serial_best = parallel_best = None
    for attempt in range(REPEAT):
        pair = [(1, "s"), (WORKERS, "p")]
        for workers, tag in pair if attempt % 2 == 0 else pair[::-1]:
            run = _execute(job, workers, tmp_path / f"{tag}{attempt}")
            if workers == 1:
                if serial_best is None or run[2] < serial_best[2]:
                    serial_best = run
            elif parallel_best is None or run[2] < parallel_best[2]:
                parallel_best = run
    serial_result, serial_bag, serial_wall = serial_best
    parallel_result, parallel_bag, parallel_wall = parallel_best

    # Identity gates: same bag, same priced cost, same counters.
    assert parallel_bag == serial_bag
    assert parallel_result.elapsed == serial_result.elapsed
    assert _counters(parallel_result) == _counters(serial_result)

    results["levers"]["execution"] = {
        "workload": EXEC_WORKLOAD,
        "derivation": list(job.derivation),
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
        "speedup": (
            round(serial_wall / parallel_wall, 3) if parallel_wall else None
        ),
        "bags_equal": True,
        "counters_equal": True,
        "priced_cost": serial_result.elapsed,
    }


def test_record_bench_parallel_json(results, report):
    """Aggregate gate + artifact; runs last within this module."""
    levers = results["levers"]
    assert set(levers) == {"search", "execution"}, "lever benches missing"
    serial_total = sum(row["serial_wall"] for row in levers.values())
    parallel_total = sum(row["parallel_wall"] for row in levers.values())
    cpus = results["cpus"]
    results["summary"] = {
        "serial_wall_total": serial_total,
        "parallel_wall_total": parallel_total,
        "aggregate_speedup": (
            round(serial_total / parallel_total, 3) if parallel_total else None
        ),
        "speed_gate": (
            "skipped-single-core" if cpus < 2
            else ("smoke-not-slower" if SMOKE else "full-1.5x")
        ),
    }
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")
    lines = [
        f"{name:<10} serial {row['serial_wall'] * 1e3:8.1f}ms  "
        f"parallel({results['workers']}) "
        f"{row['parallel_wall'] * 1e3:8.1f}ms  ({row['speedup']:.2f}x)"
        for name, row in levers.items()
    ]
    report.append(
        f"parallel levers vs serial ({'smoke' if SMOKE else 'full'}, "
        f"best of {REPEAT}, {cpus} cpu(s)):\n" + "\n".join(lines)
    )
    if cpus < 2:
        return  # identity was gated above; a speedup is impossible here
    if SMOKE:
        # Smoke gate: not slower than serial in aggregate (25% slack
        # absorbs pool startup on busy CI boxes).
        assert parallel_total <= serial_total * 1.25, results["summary"]
    elif cpus >= 4:
        # Full gate: the acceptance criterion — ≥1.5x on each lever.
        for name, row in levers.items():
            assert row["speedup"] >= 1.5, (name, row)
