"""Figure 8: estimated vs measured running times across input sizes.

Reproduced claims:

* for CPU-heavy tasks (BNL with write-out, merge-sort) the estimator
  *underestimates* and the absolute gap grows with the input size;
* for aggregation the estimates stay near-exact at every size.
"""

import pytest

from repro.bench import (
    aggregation_sweep,
    bnl_writeout_sweep,
    format_figure8,
    merge_sort_sweep,
)


@pytest.fixture(scope="module")
def panels():
    return {
        "BNL join": bnl_writeout_sweep(),
        "Merge-sort": merge_sort_sweep(),
        "Aggregation": aggregation_sweep(),
    }


@pytest.mark.figure8
def test_figure8_panels(benchmark, panels, report):
    benchmark.pedantic(aggregation_sweep, rounds=1, iterations=1)
    report.append(format_figure8(panels))


@pytest.mark.figure8
def test_join_and_sort_underestimated_increasingly(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in ("BNL join", "Merge-sort"):
        points = panels[name]
        gaps = [p.underestimation for p in points]
        # The gap is positive (measured > estimated) at the largest size
        # and grows from the smallest to the largest input.
        assert gaps[-1] > 0, name
        assert gaps[-1] > gaps[0], name


@pytest.mark.figure8
def test_aggregation_estimates_stay_tight(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for point in panels["Aggregation"]:
        assert abs(point.underestimation) <= 0.2 * point.measured


@pytest.mark.figure8
def test_measured_grows_with_input(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for points in panels.values():
        measured = [p.measured for p in points]
        assert measured == sorted(measured)
