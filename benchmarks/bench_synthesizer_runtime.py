"""§7.4: the running time of OCAS itself.

Reproduced claims: the search space grows roughly exponentially with the
number of transformation steps; the synthesizer's running time tracks the
search-space size and is *independent of the input data size* (costing
never executes programs).
"""

import pytest

from repro.cost import atom, list_annot, tuple_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.search import Synthesizer
from repro.symbolic import var
from repro.workloads import naive_join_spec


def synthesize(depth, stats, max_programs=4000):
    synth = Synthesizer(
        hierarchy=hdd_ram_hierarchy(8 * MB),
        max_depth=depth,
        max_programs=max_programs,
    )
    return synth.synthesize(
        spec=naive_join_spec(),
        input_annots={
            "R": list_annot(tuple_annot(atom(8), atom(504)), var("x")),
            "S": list_annot(tuple_annot(atom(8), atom(504)), var("y")),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        stats=stats,
    )


STATS = {"x": 2.0**21, "y": 2.0**16}


@pytest.fixture(scope="module")
def by_depth():
    return {depth: synthesize(depth, STATS) for depth in (1, 2, 3)}


def test_search_space_grows_with_steps(benchmark, by_depth, report):
    benchmark.pedantic(
        lambda: synthesize(2, STATS), rounds=1, iterations=1
    )
    sizes = {d: r.search_space for d, r in by_depth.items()}
    report.append(f"search space by depth: {sizes}")
    assert sizes[1] < sizes[2] < sizes[3]
    # Roughly exponential: each extra step multiplies the space.
    assert sizes[3] / sizes[2] >= 2


def test_runtime_tracks_search_space(benchmark, by_depth):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    runtimes = [by_depth[d].runtime for d in (1, 2, 3)]
    assert runtimes[0] < runtimes[2]


def test_runtime_independent_of_input_size(benchmark, by_depth):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small = synthesize(2, {"x": 2.0**12, "y": 2.0**10})
    large = synthesize(2, {"x": 2.0**30, "y": 2.0**28})
    # Cost-based optimization never runs the program: scaling the inputs
    # by five orders of magnitude leaves synthesis time unchanged (±3x).
    assert large.runtime < small.runtime * 3 + 0.5
    assert small.search_space == large.search_space
