"""§7.4: the running time of OCAS itself — now strategy-aware.

Reproduced claims:

* the search space grows roughly exponentially with the number of
  transformation steps;
* the synthesizer's running time tracks the search-space size and is
  *independent of the input data size* (costing never executes
  programs);
* the pluggable strategies (beam, best-first) find the **same best
  program** as exhaustive BFS on every Table-1 workload while costing a
  fraction of the candidates — ≥3× fewer tunings and ≥2× less wall
  clock on the join workloads, where the space is largest.

The head-to-head comparison is persisted to ``BENCH_search.json`` at the
repository root (candidates costed, wall time, cache hit rate per
strategy per workload) so later changes have a perf trajectory to
compare against.
"""

import json
import pathlib
import time

import pytest

from repro.bench.table1 import ALL_EXPERIMENTS
from repro.cost import atom, list_annot, tuple_annot
from repro.hierarchy import MB, hdd_ram_hierarchy
from repro.rules.registry import default_rules
from repro.search import BeamSearch, BestFirst, Synthesizer
from repro.symbolic import var
from repro.workloads import naive_join_spec

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_search.json"
)

#: The Table-1 join rows — the workloads with a non-trivial search space,
#: where the candidate/wall-clock reduction targets apply.
JOIN_WORKLOADS = (
    "BNL - No writeout",
    "BNL with cache - No writeout",
    "(GRACE) hash join - No writeout",
)

#: Strategy line-up of the head-to-head comparison.  Beam width 3 is the
#: narrowest beam that still reproduces every exhaustive winner;
#: best-first runs with its default pruning margin.
STRATEGIES = {
    "exhaustive-bfs": lambda: None,
    "beam": lambda: BeamSearch(width=3),
    "best-first": lambda: BestFirst(),
}


def synthesize(depth, stats, max_programs=4000):
    synth = Synthesizer(
        hierarchy=hdd_ram_hierarchy(8 * MB),
        max_depth=depth,
        max_programs=max_programs,
    )
    return synth.synthesize(
        spec=naive_join_spec(),
        input_annots={
            "R": list_annot(tuple_annot(atom(8), atom(504)), var("x")),
            "S": list_annot(tuple_annot(atom(8), atom(504)), var("y")),
        },
        input_locations={"R": "HDD", "S": "HDD"},
        stats=stats,
    )


STATS = {"x": 2.0**21, "y": 2.0**16}


@pytest.fixture(scope="module")
def by_depth():
    return {depth: synthesize(depth, STATS) for depth in (1, 2, 3)}


def test_search_space_grows_with_steps(benchmark, by_depth, report):
    benchmark.pedantic(
        lambda: synthesize(2, STATS), rounds=1, iterations=1
    )
    sizes = {d: r.search_space for d, r in by_depth.items()}
    report.append(f"search space by depth: {sizes}")
    assert sizes[1] < sizes[2] < sizes[3]
    # Roughly exponential: each extra step multiplies the space.
    assert sizes[3] / sizes[2] >= 2


def test_runtime_tracks_search_space(benchmark, by_depth):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    runtimes = [by_depth[d].runtime for d in (1, 2, 3)]
    assert runtimes[0] < runtimes[2]


def test_runtime_independent_of_input_size(benchmark, by_depth):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small = synthesize(2, {"x": 2.0**12, "y": 2.0**10})
    large = synthesize(2, {"x": 2.0**30, "y": 2.0**28})
    # Cost-based optimization never runs the program: scaling the inputs
    # by five orders of magnitude leaves synthesis time unchanged (±3x).
    assert large.runtime < small.runtime * 3 + 0.5
    assert small.search_space == large.search_space


# ----------------------------------------------------------------------
# Strategy head-to-head over every Table-1 workload
# ----------------------------------------------------------------------
def _run_strategy(experiment, strategy):
    """Fresh synthesizer per run: no cache leakage between strategies."""
    rules = [
        rule
        for rule in default_rules()
        if rule.name not in experiment.exclude_rules
    ]
    synth = Synthesizer(
        hierarchy=experiment.hierarchy,
        rules=rules,
        max_depth=experiment.max_depth,
        max_programs=experiment.max_programs,
        max_treefold_arity=experiment.max_treefold_arity,
        strategy=strategy,
    )
    started = time.perf_counter()
    result = synth.synthesize(
        spec=experiment.spec,
        input_annots=experiment.input_annots,
        input_locations=experiment.input_locations,
        stats=experiment.stats,
        output_location=experiment.output_location,
    )
    wall = time.perf_counter() - started
    return result, wall


@pytest.fixture(scope="module")
def comparison():
    """{workload: {strategy: (SynthesisResult, wall seconds)}} for all 16."""
    rows = {}
    for factory in ALL_EXPERIMENTS:
        experiment = factory()
        rows[experiment.name] = {
            name: _run_strategy(experiment, make())
            for name, make in STRATEGIES.items()
        }
    return rows


def _aggregate(comparison, workloads, strategy):
    candidates = sum(
        comparison[w][strategy][0].candidates_costed for w in workloads
    )
    wall = sum(comparison[w][strategy][1] for w in workloads)
    return candidates, wall


def test_strategies_agree_on_every_table1_workload(comparison, report):
    lines = ["strategy head-to-head (best program identity):"]
    for workload, runs in comparison.items():
        reference = runs["exhaustive-bfs"][0].best.program
        for name in ("beam", "best-first"):
            assert runs[name][0].best.program == reference, (
                f"{name} diverged from exhaustive BFS on {workload!r}"
            )
        lines.append(f"  {workload}: all strategies agree")
    report.append("\n".join(lines))


@pytest.mark.parametrize("strategy", ["beam", "best-first"])
def test_candidate_reduction_on_join_workloads(comparison, strategy):
    exhaustive, _ = _aggregate(comparison, JOIN_WORKLOADS, "exhaustive-bfs")
    reduced, _ = _aggregate(comparison, JOIN_WORKLOADS, strategy)
    assert exhaustive / reduced >= 3.0, (
        f"{strategy} costed {reduced} candidates vs {exhaustive} exhaustive"
    )


@pytest.mark.parametrize("strategy", ["beam", "best-first"])
def test_wall_clock_reduction_on_join_workloads(comparison, strategy):
    _, exhaustive_wall = _aggregate(
        comparison, JOIN_WORKLOADS, "exhaustive-bfs"
    )
    _, reduced_wall = _aggregate(comparison, JOIN_WORKLOADS, strategy)
    assert exhaustive_wall / reduced_wall >= 2.0, (
        f"{strategy} took {reduced_wall:.2f}s vs {exhaustive_wall:.2f}s"
    )


def test_record_bench_search_json(comparison, report):
    """Persist the head-to-head numbers for future perf trajectories."""
    workloads = {}
    for workload, runs in comparison.items():
        reference = runs["exhaustive-bfs"][0].best.program
        workloads[workload] = {}
        for name, (result, wall) in runs.items():
            workloads[workload][name] = {
                "candidates_costed": result.candidates_costed,
                "search_space": result.search_space,
                "expanded": result.expanded,
                "pruned": result.pruned,
                "depth_reached": result.depth_reached,
                "steps": result.steps,
                "opt_cost_s": result.opt_cost,
                "wall_s": round(wall, 4),
                "cache_hit_rate": round(result.cache.hit_rate, 4),
                "best_matches_exhaustive": result.best.program == reference,
            }
    aggregates = {}
    for name in STRATEGIES:
        candidates, wall = _aggregate(comparison, JOIN_WORKLOADS, name)
        aggregates[name] = {
            "join_candidates_costed": candidates,
            "join_wall_s": round(wall, 4),
        }
    exhaustive = aggregates["exhaustive-bfs"]
    for name in ("beam", "best-first"):
        aggregates[name]["join_candidate_reduction"] = round(
            exhaustive["join_candidates_costed"]
            / aggregates[name]["join_candidates_costed"],
            2,
        )
        aggregates[name]["join_wall_speedup"] = round(
            exhaustive["join_wall_s"] / aggregates[name]["join_wall_s"], 2
        )
    payload = {
        "description": (
            "Search-strategy head-to-head on the Table-1 workloads: "
            "candidates costed, wall time and cache hit rate per strategy."
        ),
        "strategies": {
            "exhaustive-bfs": {},
            "beam": {"width": 3},
            "best-first": {"margin": BestFirst().margin},
        },
        "join_workloads": list(JOIN_WORKLOADS),
        "workloads": workloads,
        "aggregates": aggregates,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    report.append(
        "strategy aggregates on join workloads: "
        + json.dumps(aggregates, indent=2)
    )
