"""Batch synthesis: ``Session.synthesize_all`` serial vs process pool.

The api layer's batching claim, measured: synthesizing a batch of
Table-1 workloads through one Session with ``parallel=4`` worker
processes is faster than the same batch synthesized serially — and
returns exactly the same winners in the same (input) order.

The batch uses the join workloads (the largest search spaces, so the
work dominates the pool's fork/IPC overhead) plus the sort.  On a
single-core runner the pool cannot beat serial execution, so the
speedup gate only applies when the machine actually has ≥2 CPUs; the
determinism gate always applies.  Results are persisted to
``BENCH_batch.json`` at the repository root.
"""

import json
import os
import pathlib
import time

from repro.api import Session

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_batch.json"
)

#: Heaviest synthesis workloads first: the pool balances better when the
#: long pole starts immediately.
BATCH = (
    "bnl-with-cache",
    "grace-join",
    "bnl-join",
    "external-sort",
    "product-writeout-hdd",
    "product-writeout-hdd2",
    "product-writeout-flash",
    "dup-removal",
)

PARALLEL = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def test_parallel_batch_matches_serial_and_is_faster(report):
    started = time.perf_counter()
    serial = Session().synthesize_all(BATCH, scale="table1")
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = Session().synthesize_all(
        BATCH, scale="table1", parallel=PARALLEL
    )
    parallel_seconds = time.perf_counter() - started

    # Determinism: same winners, same order, same costs.
    assert [job.workload for job in parallel] == [
        job.workload for job in serial
    ]
    for a, b in zip(serial, parallel):
        assert a.derivation == b.derivation, a.workload
        assert abs(a.opt_cost - b.opt_cost) <= 1e-9 * max(a.opt_cost, 1.0)

    cpus = _cpus()
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    lines = [
        "Batch synthesis: Session.synthesize_all over "
        f"{len(BATCH)} Table-1 workloads",
        f"  serial:       {serial_seconds:8.2f}s",
        f"  parallel={PARALLEL}:   {parallel_seconds:8.2f}s "
        f"({speedup:.2f}x, {cpus} CPU(s))",
    ]
    report.append("\n".join(lines))
    BENCH_JSON.write_text(
        json.dumps(
            {
                "workloads": list(BATCH),
                "parallel": PARALLEL,
                "cpus": cpus,
                "serial_seconds": serial_seconds,
                "parallel_seconds": parallel_seconds,
                "speedup": speedup,
                "winners": {
                    job.workload: list(job.derivation) for job in serial
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    # The speedup gate: only meaningful when the pool can actually run
    # workers concurrently.  The 10% slack absorbs fork/IPC overhead
    # jitter on contended small runners without hiding a real
    # serialization regression.
    if cpus >= 2:
        assert parallel_seconds < serial_seconds * 1.1, (
            f"parallel={PARALLEL} ({parallel_seconds:.2f}s) not faster "
            f"than serial ({serial_seconds:.2f}s) on {cpus} CPUs"
        )
