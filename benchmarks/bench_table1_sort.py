"""Table 1, row 7: external sorting.

The derivation is the paper's §7.2 showcase: insertion sort (Θ(n²) data
movement) → fldL-to-trfld → inc-branching^k → apply-block → 2^k-way
External Merge-Sort with tuned fan-in and buffers.
"""

import pytest

from repro.bench import format_table, run_experiment
from repro.bench.table1 import external_sorting
from repro.ocal import App, TreeFold


@pytest.mark.table1
def test_external_sorting(benchmark, report):
    row = benchmark.pedantic(
        lambda: run_experiment(external_sorting()), rounds=1, iterations=1
    )
    report.append(format_table([row]))
    # The winner is a multi-way treeFold merge sort…
    program = row.synthesis.best.program
    assert isinstance(program, App) and isinstance(program.fn, TreeFold)
    assert program.fn.arity >= 4
    # …derived through the paper's chain of rules…
    assert "fldL-to-trfld" in row.derivation
    assert "inc-branching" in row.derivation
    # …with an enormous improvement over the n² spec.
    assert row.spec_cost > row.opt_cost * 1e5
    assert 0.3 <= row.act_over_opt <= 4.0
